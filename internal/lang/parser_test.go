package lang

import (
	"strings"
	"testing"
)

func TestParseAssignmentAndIO(t *testing.T) {
	p, err := Parse("read(x); y = x * 2 + 1; write(y);")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(p.Body) != 3 {
		t.Fatalf("got %d statements, want 3", len(p.Body))
	}
	if r, ok := p.Body[0].(*ReadStmt); !ok || r.Name != "x" {
		t.Errorf("stmt 0 = %#v, want read(x)", p.Body[0])
	}
	a, ok := p.Body[1].(*AssignStmt)
	if !ok || a.Name != "y" {
		t.Fatalf("stmt 1 = %#v, want assignment to y", p.Body[1])
	}
	if got := ExprString(a.Value); got != "x * 2 + 1" {
		t.Errorf("rhs = %q, want \"x * 2 + 1\"", got)
	}
	if w, ok := p.Body[2].(*WriteStmt); !ok || ExprString(w.Value) != "y" {
		t.Errorf("stmt 2 = %#v, want write(y)", p.Body[2])
	}
}

func TestParseIfElseChain(t *testing.T) {
	p, err := Parse(`
if (x <= 0)
    s = s + f1(x);
else {
    c = c + 1;
    if (x % 2 == 0) s = s + f2(x); else s = s + f3(x);
}`)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	outer, ok := p.Body[0].(*IfStmt)
	if !ok {
		t.Fatalf("stmt 0 = %#v, want if", p.Body[0])
	}
	if outer.Else == nil {
		t.Fatal("outer if has no else")
	}
	blk, ok := outer.Else.(*BlockStmt)
	if !ok || len(blk.List) != 2 {
		t.Fatalf("else = %#v, want 2-statement block", outer.Else)
	}
	inner, ok := blk.List[1].(*IfStmt)
	if !ok || inner.Else == nil {
		t.Fatalf("nested statement = %#v, want if/else", blk.List[1])
	}
}

func TestParseWhileAndJumps(t *testing.T) {
	p, err := Parse(`
while (!eof()) {
    read(x);
    if (x < 0) continue;
    if (x == 0) break;
    total = total + x;
}
return total;`)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	w, ok := p.Body[0].(*WhileStmt)
	if !ok {
		t.Fatalf("stmt 0 = %#v, want while", p.Body[0])
	}
	body := w.Body.(*BlockStmt)
	if _, ok := body.List[1].(*IfStmt).Then.(*ContinueStmt); !ok {
		t.Error("expected continue in first if")
	}
	if _, ok := body.List[2].(*IfStmt).Then.(*BreakStmt); !ok {
		t.Error("expected break in second if")
	}
	r, ok := p.Body[1].(*ReturnStmt)
	if !ok || r.Value == nil {
		t.Fatalf("stmt 1 = %#v, want return with value", p.Body[1])
	}
}

func TestParseGotoAndLabels(t *testing.T) {
	p, err := Parse(`
s = 0;
L1: if (eof()) goto L2;
read(x);
s = s + x;
goto L1;
L2: write(s);`)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(p.Labels) != 2 {
		t.Fatalf("labels = %v, want L1 and L2", p.Labels)
	}
	l1 := p.Labels["L1"]
	if l1 == nil {
		t.Fatal("label L1 missing")
	}
	iff, ok := l1.Stmt.(*IfStmt)
	if !ok {
		t.Fatalf("L1 labels %#v, want if", l1.Stmt)
	}
	if g, ok := iff.Then.(*GotoStmt); !ok || g.Label != "L2" {
		t.Errorf("then-branch = %#v, want goto L2", iff.Then)
	}
}

func TestParseSwitch(t *testing.T) {
	p, err := Parse(`
switch (c()) {
case 1:
    x = f1();
    break;
case 2, 3:
    y = f2();
default:
    z = f3();
}`)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	sw, ok := p.Body[0].(*SwitchStmt)
	if !ok {
		t.Fatalf("stmt 0 = %#v, want switch", p.Body[0])
	}
	if len(sw.Cases) != 3 {
		t.Fatalf("got %d cases, want 3", len(sw.Cases))
	}
	if len(sw.Cases[0].Body) != 2 {
		t.Errorf("case 1 body has %d statements, want 2", len(sw.Cases[0].Body))
	}
	if got := sw.Cases[1].Values; len(got) != 2 || got[0] != 2 || got[1] != 3 {
		t.Errorf("case 2 values = %v, want [2 3]", got)
	}
	if !sw.Cases[2].IsDefault {
		t.Error("third clause should be default")
	}
}

func TestParseExprPrecedence(t *testing.T) {
	cases := []struct{ src, want string }{
		{"x = a + b * c;", "a + b * c"},
		{"x = (a + b) * c;", "(a + b) * c"},
		{"x = a < b && c < d || e;", "a < b && c < d || e"},
		{"x = !(a == b);", "!(a == b)"},
		{"x = -a + b;", "-a + b"},
		{"x = a - (b - c);", "a - (b - c)"},
		{"x = a % 2 == 0;", "a % 2 == 0"},
		{"x = f(a, b + 1, g());", "f(a, b + 1, g())"},
	}
	for _, c := range cases {
		p, err := Parse(c.src)
		if err != nil {
			t.Errorf("Parse(%q): %v", c.src, err)
			continue
		}
		got := ExprString(p.Body[0].(*AssignStmt).Value)
		if got != c.want {
			t.Errorf("Parse(%q) prints %q, want %q", c.src, got, c.want)
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct{ src, wantSub string }{
		{"x = ;", "expected expression"},
		{"if x > 0) y = 1;", "expected '('"},
		{"goto;", "expected identifier"},
		{"goto Nowhere;", "undefined label"},
		{"break;", "break outside loop or switch"},
		{"continue;", "continue outside loop"},
		{"while (1) { continue; } continue;", "continue outside loop"},
		{"switch (x) { continue; }", "expected 'case'"},
		{"switch (x) { case 1: continue; }", "continue outside loop"},
		{"L: x = 1; L: y = 2;", "duplicate label"},
		{"switch (x) { case 1: ; case 1: ; }", "duplicate case value"},
		{"switch (x) { default: ; default: ; }", "multiple default"},
		{"{ x = 1;", "unterminated block"},
		{"else x = 1;", "expected statement"},
	}
	for _, c := range cases {
		_, err := Parse(c.src)
		if err == nil {
			t.Errorf("Parse(%q): expected error containing %q", c.src, c.wantSub)
			continue
		}
		if !strings.Contains(err.Error(), c.wantSub) {
			t.Errorf("Parse(%q): error %q, want substring %q", c.src, err, c.wantSub)
		}
	}
}

func TestParseBreakInsideSwitchInsideLoop(t *testing.T) {
	// break binds to the switch; continue still binds to the loop.
	_, err := Parse(`
while (1) {
    switch (x) {
    case 1: break;
    case 2: continue;
    }
    break;
}`)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
}

func TestParseLabelOnCompound(t *testing.T) {
	p, err := Parse("Top: while (x < 10) x = x + 1; goto Top;")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if _, ok := Unlabel(p.Body[0]).(*WhileStmt); !ok {
		t.Errorf("labeled statement = %#v, want while", p.Body[0])
	}
}

func TestMustParsePanicsOnBadInput(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustParse did not panic on invalid source")
		}
	}()
	MustParse("x = ;")
}

func TestStatementLinesMatchSource(t *testing.T) {
	src := "a = 1;\nb = 2;\nwhile (a < b) {\n    a = a + 1;\n}\nwrite(a);"
	p := MustParse(src)
	wantLines := map[int]bool{1: true, 2: true, 3: true, 4: true, 6: true}
	stmts := Statements(p)
	if len(stmts) != len(wantLines) {
		t.Fatalf("got %d statements, want %d", len(stmts), len(wantLines))
	}
	for _, s := range stmts {
		if !wantLines[s.Pos().Line] {
			t.Errorf("unexpected statement line %d (%s)", s.Pos().Line, StmtString(s))
		}
	}
}
