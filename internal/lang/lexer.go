package lang

import "fmt"

// SyntaxError reports a lexical or parse error with its source
// position.
type SyntaxError struct {
	Pos Pos
	Msg string
}

// Error implements the error interface.
func (e *SyntaxError) Error() string {
	return fmt.Sprintf("%s: %s", e.Pos, e.Msg)
}

// Lexer converts source text into tokens. Create one with NewLexer and
// pull tokens with Next; after the input is exhausted Next returns EOF
// tokens forever.
type Lexer struct {
	src  string
	off  int // byte offset of the next unread character
	line int
	col  int
	err  *SyntaxError // first error encountered, if any
}

// NewLexer returns a lexer over src.
func NewLexer(src string) *Lexer {
	return &Lexer{src: src, line: 1, col: 1}
}

// Err returns the first lexical error encountered, or nil.
func (lx *Lexer) Err() error {
	if lx.err == nil {
		return nil
	}
	return lx.err
}

func (lx *Lexer) errorf(pos Pos, format string, args ...any) {
	if lx.err == nil {
		lx.err = &SyntaxError{Pos: pos, Msg: fmt.Sprintf(format, args...)}
	}
}

func (lx *Lexer) peek() byte {
	if lx.off >= len(lx.src) {
		return 0
	}
	return lx.src[lx.off]
}

func (lx *Lexer) peek2() byte {
	if lx.off+1 >= len(lx.src) {
		return 0
	}
	return lx.src[lx.off+1]
}

func (lx *Lexer) advance() byte {
	if lx.off >= len(lx.src) {
		return 0
	}
	c := lx.src[lx.off]
	lx.off++
	if c == '\n' {
		lx.line++
		lx.col = 1
	} else {
		lx.col++
	}
	return c
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }
func isLetter(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_'
}

// skipSpace consumes whitespace and comments. Both //-to-end-of-line
// and /* ... */ comments are supported so corpus files can carry the
// paper's annotations (e.g. "continue; /* goto line 3 */").
func (lx *Lexer) skipSpace() {
	for {
		c := lx.peek()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			lx.advance()
		case c == '/' && lx.peek2() == '/':
			for lx.peek() != '\n' && lx.peek() != 0 {
				lx.advance()
			}
		case c == '/' && lx.peek2() == '*':
			start := lx.pos()
			lx.advance()
			lx.advance()
			for {
				if lx.peek() == 0 {
					lx.errorf(start, "unterminated block comment")
					return
				}
				if lx.peek() == '*' && lx.peek2() == '/' {
					lx.advance()
					lx.advance()
					break
				}
				lx.advance()
			}
		default:
			return
		}
	}
}

func (lx *Lexer) pos() Pos { return Pos{Line: lx.line, Col: lx.col} }

// Next returns the next token in the input.
func (lx *Lexer) Next() Token {
	lx.skipSpace()
	pos := lx.pos()
	c := lx.peek()
	switch {
	case c == 0:
		return Token{Kind: EOF, Pos: pos}
	case isDigit(c):
		start := lx.off
		for isDigit(lx.peek()) {
			lx.advance()
		}
		return Token{Kind: INT, Text: lx.src[start:lx.off], Pos: pos}
	case isLetter(c):
		start := lx.off
		for isLetter(lx.peek()) || isDigit(lx.peek()) {
			lx.advance()
		}
		text := lx.src[start:lx.off]
		if kw, ok := keywords[text]; ok {
			return Token{Kind: kw, Pos: pos}
		}
		return Token{Kind: IDENT, Text: text, Pos: pos}
	}

	lx.advance()
	two := func(next byte, withKind, withoutKind TokenKind) Token {
		if lx.peek() == next {
			lx.advance()
			return Token{Kind: withKind, Pos: pos}
		}
		return Token{Kind: withoutKind, Pos: pos}
	}
	switch c {
	case '(':
		return Token{Kind: LParen, Pos: pos}
	case ')':
		return Token{Kind: RParen, Pos: pos}
	case '{':
		return Token{Kind: LBrace, Pos: pos}
	case '}':
		return Token{Kind: RBrace, Pos: pos}
	case ';':
		return Token{Kind: Semi, Pos: pos}
	case ':':
		return Token{Kind: Colon, Pos: pos}
	case ',':
		return Token{Kind: Comma, Pos: pos}
	case '+':
		return Token{Kind: Plus, Pos: pos}
	case '-':
		return Token{Kind: Minus, Pos: pos}
	case '*':
		return Token{Kind: Star, Pos: pos}
	case '/':
		return Token{Kind: Slash, Pos: pos}
	case '%':
		return Token{Kind: Percent, Pos: pos}
	case '=':
		return two('=', Eq, Assign)
	case '!':
		return two('=', Neq, Not)
	case '<':
		return two('=', Leq, Lt)
	case '>':
		return two('=', Geq, Gt)
	case '&':
		if lx.peek() == '&' {
			lx.advance()
			return Token{Kind: AndAnd, Pos: pos}
		}
		lx.errorf(pos, "unexpected character '&' (did you mean '&&'?)")
		return Token{Kind: EOF, Pos: pos}
	case '|':
		if lx.peek() == '|' {
			lx.advance()
			return Token{Kind: OrOr, Pos: pos}
		}
		lx.errorf(pos, "unexpected character '|' (did you mean '||'?)")
		return Token{Kind: EOF, Pos: pos}
	}
	lx.errorf(pos, "unexpected character %q", string(c))
	return Token{Kind: EOF, Pos: pos}
}

// Tokenize lexes the whole input, returning the token stream without
// the trailing EOF. It is a convenience for tests.
func Tokenize(src string) ([]Token, error) {
	lx := NewLexer(src)
	var toks []Token
	for {
		t := lx.Next()
		if lx.Err() != nil {
			return nil, lx.Err()
		}
		if t.Kind == EOF {
			return toks, nil
		}
		toks = append(toks, t)
	}
}
