package lang

import (
	"reflect"
	"testing"
	"testing/quick"
)

func TestUsesAndDef(t *testing.T) {
	p := MustParse(`
read(x);
y = x + z * x;
write(y - w);
if (a < b) c = 1;
while (n > 0) n = n - 1;
switch (tag) { case 1: ; }
return r + 1;`)
	cases := []struct {
		idx     int
		wantDef string
		wantUse []string
	}{
		{0, "x", nil},
		{1, "y", []string{"x", "z"}},
		{2, "", []string{"w", "y"}},
		{3, "", []string{"a", "b"}},
		{4, "", []string{"n"}},
		{5, "", []string{"tag"}},
		{6, "", []string{"r"}},
	}
	for _, c := range cases {
		s := p.Body[c.idx]
		if got := Def(s); got != c.wantDef {
			t.Errorf("Def(stmt %d) = %q, want %q", c.idx, got, c.wantDef)
		}
		if got := Uses(s); !reflect.DeepEqual(got, c.wantUse) {
			t.Errorf("Uses(stmt %d) = %v, want %v", c.idx, got, c.wantUse)
		}
	}
}

func TestUsesThroughLabel(t *testing.T) {
	p := MustParse("L: x = y + 1; goto L;")
	if got := Def(p.Body[0]); got != "x" {
		t.Errorf("Def = %q, want x", got)
	}
	if got := Uses(p.Body[0]); !reflect.DeepEqual(got, []string{"y"}) {
		t.Errorf("Uses = %v, want [y]", got)
	}
}

func TestExprVarSetDeduplicatesAndSorts(t *testing.T) {
	p := MustParse("x = b + a + b + a * b;")
	got := ExprVarSet(p.Body[0].(*AssignStmt).Value)
	if !reflect.DeepEqual(got, []string{"a", "b"}) {
		t.Errorf("ExprVarSet = %v, want [a b]", got)
	}
}

func TestIsJump(t *testing.T) {
	p := MustParse(`
L: x = 1;
goto L;
while (1) { break; continue; }
return;
write(x);`)
	var jumps, nonJumps int
	WalkProgram(p, func(s Stmt) {
		switch s.(type) {
		case *LabeledStmt, *BlockStmt:
			return
		}
		if IsJump(s) {
			jumps++
		} else {
			nonJumps++
		}
	})
	if jumps != 4 {
		t.Errorf("found %d jumps, want 4 (goto, break, continue, return)", jumps)
	}
	if nonJumps != 3 {
		t.Errorf("found %d non-jumps, want 3 (assign, while, write)", nonJumps)
	}
}

func TestWalkVisitsLexicalOrder(t *testing.T) {
	p := MustParse(`
a = 1;
if (a) {
    b = 2;
    while (b) c = 3;
}
d = 4;`)
	var lines []int
	WalkProgram(p, func(s Stmt) {
		switch s.(type) {
		case *BlockStmt, *LabeledStmt:
			return
		}
		lines = append(lines, s.Pos().Line)
	})
	want := []int{2, 3, 4, 5, 5, 7}
	if !reflect.DeepEqual(lines, want) {
		t.Errorf("visit lines = %v, want %v", lines, want)
	}
}

func TestStmtAtLine(t *testing.T) {
	p := MustParse("a = 1;\nif (a) {\n    b = 2;\n}\nwrite(b);")
	if s := StmtAtLine(p, 3); s == nil || Def(s) != "b" {
		t.Errorf("StmtAtLine(3) = %#v, want b = 2", s)
	}
	if s := StmtAtLine(p, 2); s == nil {
		t.Error("StmtAtLine(2) = nil, want the if")
	} else if _, ok := s.(*IfStmt); !ok {
		t.Errorf("StmtAtLine(2) = %#v, want if", s)
	}
	if s := StmtAtLine(p, 99); s != nil {
		t.Errorf("StmtAtLine(99) = %#v, want nil", s)
	}
}

func TestVarNamesAndIntrinsics(t *testing.T) {
	p := MustParse("read(x); y = f1(x) + g(); while (!eof()) { z = 0; } write(y + z);")
	if got := VarNames(p); !reflect.DeepEqual(got, []string{"x", "y", "z"}) {
		t.Errorf("VarNames = %v", got)
	}
	if got := IntrinsicNames(p); !reflect.DeepEqual(got, []string{"eof", "f1", "g"}) {
		t.Errorf("IntrinsicNames = %v", got)
	}
}

func TestUnlabelNested(t *testing.T) {
	p := MustParse("A: B: x = 1; goto A; goto B;")
	inner := Unlabel(p.Body[0])
	if _, ok := inner.(*AssignStmt); !ok {
		t.Errorf("Unlabel = %#v, want assignment", inner)
	}
}

// Property: ExprVarSet output is always sorted and duplicate-free,
// for arbitrary expressions built from a small grammar.
func TestExprVarSetSortedProperty(t *testing.T) {
	varPool := []string{"a", "b", "c", "d", "e"}
	// build deterministically from a seed path
	var build func(seed uint64, depth int) Expr
	build = func(seed uint64, depth int) Expr {
		if depth <= 0 || seed%5 == 0 {
			return &Ident{Name: varPool[seed%uint64(len(varPool))]}
		}
		switch seed % 4 {
		case 0:
			return &IntLit{Value: int64(seed % 100)}
		case 1:
			return &UnaryExpr{Op: "!", X: build(seed/4, depth-1)}
		case 2:
			return &CallExpr{Name: "f", Args: []Expr{build(seed/4, depth-1), build(seed/7, depth-1)}}
		default:
			return &BinaryExpr{Op: "+", X: build(seed/4, depth-1), Y: build(seed/9, depth-1)}
		}
	}
	f := func(seed uint64) bool {
		e := build(seed, 6)
		set := ExprVarSet(e)
		for i := 1; i < len(set); i++ {
			if set[i-1] >= set[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
