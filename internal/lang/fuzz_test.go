package lang

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// FuzzParse drives the lexer and recursive-descent parser with
// arbitrary source. The invariants: Parse never panics or overflows
// the stack (the maxNestingDepth guard), a successful parse
// pretty-prints to source that parses again, and every AST walk over
// the result terminates.
func FuzzParse(f *testing.F) {
	files, _ := filepath.Glob("../../testdata/*.mc")
	for _, fn := range files {
		if data, err := os.ReadFile(fn); err == nil {
			f.Add(string(data))
		}
	}
	for _, s := range []string{
		"",
		"x = 1;",
		"a: b: c: x = 1; goto a;",
		"while (x < 3) { if (x) break; else continue; }",
		"switch (x) { case 1, 2: y = 1; break; default: return y; }",
		"read(x); write(f(x, y(1)));",
		"x = ((((1))));",
		"x = !!-!-1;",
		strings.Repeat("{", 64) + strings.Repeat("}", 64),
		"if (1) if (1) if (1) x = 1; else y = 2;",
		"x = 9999999999999999999999999999;",
		"// comment only",
		"x = 1 % 0;",
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		p, err := Parse(src)
		if err != nil {
			return
		}
		if p == nil {
			t.Fatal("Parse returned nil program and nil error")
		}
		// The printer and a re-parse must accept anything Parse
		// accepted: slices are materialized through exactly this
		// round-trip.
		out := Format(p, PrintOptions{})
		if _, err := Parse(out); err != nil {
			t.Fatalf("re-parse of formatted output failed: %v\ninput: %q\nformatted: %q", err, src, out)
		}
		// Walks must terminate; Statements filters wrappers, empties
		// and blocks out of the walk, never adds.
		n := 0
		WalkProgram(p, func(Stmt) { n++ })
		stmts := Statements(p)
		if len(stmts) > n {
			t.Fatalf("Statements len %d > WalkProgram count %d", len(stmts), n)
		}
		for _, s := range stmts {
			switch s.(type) {
			case *LabeledStmt, *EmptyStmt, *BlockStmt:
				t.Fatalf("Statements returned a wrapper/empty/block: %T", s)
			}
		}
	})
}

// FuzzTokenize pins the lexer alone: never panics, and on success
// every token has a sane position.
func FuzzTokenize(f *testing.F) {
	for _, s := range []string{"", "x = 1; // c\n", "@#$%", "x <= != ! =", "\x00\xff"} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		toks, err := Tokenize(src)
		if err != nil {
			return
		}
		for _, tok := range toks {
			if tok.Pos.Line < 1 || tok.Pos.Col < 1 {
				t.Fatalf("token %v has non-positive position %+v", tok, tok.Pos)
			}
		}
	})
}
