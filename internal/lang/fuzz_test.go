package lang

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// FuzzParse drives the lexer and recursive-descent parser with
// arbitrary source. The invariants: Parse never panics or overflows
// the stack (the maxNestingDepth guard), a successful parse
// pretty-prints to source that parses again, and every AST walk over
// the result terminates.
func FuzzParse(f *testing.F) {
	files, _ := filepath.Glob("../../testdata/*.mc")
	for _, fn := range files {
		if data, err := os.ReadFile(fn); err == nil {
			f.Add(string(data))
		}
	}
	for _, s := range []string{
		"",
		"x = 1;",
		"a: b: c: x = 1; goto a;",
		"while (x < 3) { if (x) break; else continue; }",
		"switch (x) { case 1, 2: y = 1; break; default: return y; }",
		"read(x); write(f(x, y(1)));",
		"x = ((((1))));",
		"x = !!-!-1;",
		strings.Repeat("{", 64) + strings.Repeat("}", 64),
		"if (1) if (1) if (1) x = 1; else y = 2;",
		"x = 9999999999999999999999999999;",
		"// comment only",
		"x = 1 % 0;",
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		p, err := Parse(src)
		if err != nil {
			return
		}
		if p == nil {
			t.Fatal("Parse returned nil program and nil error")
		}
		// The printer and a re-parse must accept anything Parse
		// accepted: slices are materialized through exactly this
		// round-trip.
		out := Format(p, PrintOptions{})
		if _, err := Parse(out); err != nil {
			t.Fatalf("re-parse of formatted output failed: %v\ninput: %q\nformatted: %q", err, src, out)
		}
		// Walks must terminate; Statements filters wrappers, empties
		// and blocks out of the walk, never adds.
		n := 0
		WalkProgram(p, func(Stmt) { n++ })
		stmts := Statements(p)
		if len(stmts) > n {
			t.Fatalf("Statements len %d > WalkProgram count %d", len(stmts), n)
		}
		for _, s := range stmts {
			switch s.(type) {
			case *LabeledStmt, *EmptyStmt, *BlockStmt:
				t.Fatalf("Statements returned a wrapper/empty/block: %T", s)
			}
		}
	})
}

// FuzzParseProcedures targets the interprocedural grammar: procedure
// declarations, parameter lists, and call statements. Beyond the
// FuzzParse invariants (round-trip through the printer, terminating
// walks), a successful parse must preserve the procedure structure
// across the round trip — same declarations in order, same arity, the
// same call statements — and WalkProgram must visit every procedure
// body exactly once, so Statements covers call statements without
// double-counting.
func FuzzParseProcedures(f *testing.F) {
	files, _ := filepath.Glob("../../testdata/*.mc")
	for _, fn := range files {
		if data, err := os.ReadFile(fn); err == nil {
			f.Add(string(data))
		}
	}
	for _, s := range []string{
		"proc p() {\n}\nx = 1;",
		"proc add(s, x) {\n    s = s + x;\n}\nsum = 0;\ncall add(sum, a);\nwrite(sum);",
		"proc a(x) {\n    x = 1;\n}\nproc b(y) {\n    call a(y);\n}\ncall b(z);",
		"proc l(v) {\n    top: if (v) goto top;\n}\ncall l(w);",
		"proc s(x) {\n    switch (x) { case 1: x = 0; break; default: x = 2; }\n}\ncall s(q);",
		"call missing(x);",
		"proc p(a, a) {\n}\n",
		"proc p(x) {\n    read(x);\n}\n",
		"proc p(x) {\n}\nproc p(y) {\n}\n",
		"proc main() {\n}\ncall main();",
		"call p(1 + 2, f(x));",
		"proc deep(v) {\n    while (v) { if (v) { v = v - 1; continue; } break; }\n}\ncall deep(n);",
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		p, err := Parse(src)
		if err != nil {
			return
		}
		out := Format(p, PrintOptions{})
		q, err := Parse(out)
		if err != nil {
			t.Fatalf("re-parse of formatted output failed: %v\ninput: %q\nformatted: %q", err, src, out)
		}
		if len(q.Procs) != len(p.Procs) {
			t.Fatalf("round trip changed proc count %d -> %d\ninput: %q", len(p.Procs), len(q.Procs), src)
		}
		for i, d := range p.Procs {
			if q.Procs[i].Name != d.Name {
				t.Fatalf("round trip renamed proc %q -> %q", d.Name, q.Procs[i].Name)
			}
			if len(q.Procs[i].Params) != len(d.Params) {
				t.Fatalf("round trip changed arity of %s: %d -> %d", d.Name, len(d.Params), len(q.Procs[i].Params))
			}
		}
		// WalkProgram visits each proc body once, then main; a second
		// walk is deterministic.
		count := func(prog *Program) (total, calls int) {
			WalkProgram(prog, func(s Stmt) {
				total++
				if _, ok := s.(*CallStmt); ok {
					calls++
				}
			})
			return
		}
		n1, c1 := count(p)
		n2, c2 := count(p)
		if n1 != n2 || c1 != c2 {
			t.Fatalf("WalkProgram not deterministic: %d/%d then %d/%d", n1, c1, n2, c2)
		}
		qn, qc := count(q)
		if qn != n1 || qc != c1 {
			t.Fatalf("round trip changed walk counts: %d/%d -> %d/%d\ninput: %q", n1, c1, qn, qc, src)
		}
		// Statements filters wrappers but keeps every call statement.
		sc := 0
		for _, s := range Statements(p) {
			switch s.(type) {
			case *LabeledStmt, *EmptyStmt, *BlockStmt:
				t.Fatalf("Statements returned a wrapper/empty/block: %T", s)
			case *CallStmt:
				sc++
			}
		}
		if sc != c1 {
			t.Fatalf("Statements saw %d call statements, walk saw %d", sc, c1)
		}
	})
}

// FuzzTokenize pins the lexer alone: never panics, and on success
// every token has a sane position.
func FuzzTokenize(f *testing.F) {
	for _, s := range []string{"", "x = 1; // c\n", "@#$%", "x <= != ! =", "\x00\xff"} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		toks, err := Tokenize(src)
		if err != nil {
			return
		}
		for _, tok := range toks {
			if tok.Pos.Line < 1 || tok.Pos.Col < 1 {
				t.Fatalf("token %v has non-positive position %+v", tok, tok.Pos)
			}
		}
	})
}
