package lang

import "sort"

// Node is the interface shared by all AST nodes. Every node records
// the source position of its first token; the position's line number
// is the statement identifier used throughout the slicer (slicing
// criteria are (variable, line) pairs, as in the paper).
type Node interface {
	Pos() Pos
}

// Expr is an expression node. Expressions are side-effect free:
// intrinsic calls such as f1(x) or eof() are treated as pure, opaque
// functions exactly as the paper's example programs do.
type Expr interface {
	Node
	exprNode()
}

// Stmt is a statement node.
type Stmt interface {
	Node
	stmtNode()
}

// ---------------------------------------------------------------------
// Expressions.

// IntLit is an integer literal.
type IntLit struct {
	P     Pos
	Value int64
}

// Ident is a variable reference.
type Ident struct {
	P    Pos
	Name string
}

// CallExpr is a call to an intrinsic (uninterpreted) function, e.g.
// f1(x) or eof(). The language has no user-defined functions; calls
// model the opaque computations of the paper's examples.
type CallExpr struct {
	P    Pos
	Name string
	Args []Expr
}

// UnaryExpr is a unary operation: "!" (logical not) or "-" (negation).
type UnaryExpr struct {
	P  Pos
	Op string
	X  Expr
}

// BinaryExpr is a binary operation. Op is one of
// + - * / % < <= > >= == != && ||. Operands are integers with C
// truthiness: zero is false, anything else is true; comparisons and
// logical operators yield 0 or 1.
type BinaryExpr struct {
	P    Pos
	Op   string
	X, Y Expr
}

// Pos implementations for expressions.
func (e *IntLit) Pos() Pos     { return e.P }
func (e *Ident) Pos() Pos      { return e.P }
func (e *CallExpr) Pos() Pos   { return e.P }
func (e *UnaryExpr) Pos() Pos  { return e.P }
func (e *BinaryExpr) Pos() Pos { return e.P }

func (*IntLit) exprNode()     {}
func (*Ident) exprNode()      {}
func (*CallExpr) exprNode()   {}
func (*UnaryExpr) exprNode()  {}
func (*BinaryExpr) exprNode() {}

// ---------------------------------------------------------------------
// Statements.

// AssignStmt is "name = value;".
type AssignStmt struct {
	P     Pos
	Name  string
	Value Expr
}

// ReadStmt is "read(name);" — it defines name from the input stream.
type ReadStmt struct {
	P    Pos
	Name string
}

// WriteStmt is "write(value);" — it uses the variables of value.
type WriteStmt struct {
	P     Pos
	Value Expr
}

// IfStmt is "if (cond) then [else els]". Else is nil when absent.
type IfStmt struct {
	P    Pos
	Cond Expr
	Then Stmt
	Else Stmt
}

// WhileStmt is "while (cond) body".
type WhileStmt struct {
	P    Pos
	Cond Expr
	Body Stmt
}

// SwitchStmt is a C-style switch with fall-through between cases:
// control runs off the end of one case body into the next unless a
// jump (typically break) intervenes. This is what makes the paper's
// Figure 14 interesting.
type SwitchStmt struct {
	P     Pos
	Tag   Expr
	Cases []*CaseClause
}

// CaseClause is one "case v1, v2: stmts" or "default: stmts" arm of a
// switch.
type CaseClause struct {
	P         Pos
	Values    []int64 // nil for default
	IsDefault bool
	Body      []Stmt
}

// Pos returns the position of the clause's case/default keyword.
func (c *CaseClause) Pos() Pos { return c.P }

// BlockStmt is "{ stmts }".
type BlockStmt struct {
	P    Pos
	List []Stmt
}

// GotoStmt is "goto label;".
type GotoStmt struct {
	P     Pos
	Label string
}

// BreakStmt is "break;" — it exits the innermost enclosing loop or
// switch, like C.
type BreakStmt struct {
	P Pos
}

// ContinueStmt is "continue;" — it jumps to the condition re-test of
// the innermost enclosing while loop, like C.
type ContinueStmt struct {
	P Pos
}

// ReturnStmt is "return;" or "return value;" — it jumps to the
// program's exit. Value, when present, is the program's result.
type ReturnStmt struct {
	P     Pos
	Value Expr // may be nil
}

// CallStmt is "call p(a1, a2);" — a procedure call with value-result
// parameter passing: argument expressions are copied into the callee's
// formals on entry, and on return the final formal values are copied
// back into the arguments that are plain variables. Arguments that are
// not plain identifiers (literals, compound expressions) are inputs
// only. When the same variable appears as more than one argument, the
// copy-out of the last occurrence wins, matching left-to-right
// copy-back order.
type CallStmt struct {
	P    Pos
	Name string
	Args []Expr
}

// LabeledStmt is "label: stmt". Labels are program-unique and are
// goto targets.
type LabeledStmt struct {
	P     Pos
	Label string
	Stmt  Stmt
}

// EmptyStmt is a lone ";". It generates no flowgraph node; it exists
// so retargeted labels can be printed at positions with no remaining
// statement ("L14:" before the end of a slice).
type EmptyStmt struct {
	P Pos
}

// Pos implementations for statements.
func (s *AssignStmt) Pos() Pos   { return s.P }
func (s *ReadStmt) Pos() Pos     { return s.P }
func (s *WriteStmt) Pos() Pos    { return s.P }
func (s *IfStmt) Pos() Pos       { return s.P }
func (s *WhileStmt) Pos() Pos    { return s.P }
func (s *SwitchStmt) Pos() Pos   { return s.P }
func (s *BlockStmt) Pos() Pos    { return s.P }
func (s *GotoStmt) Pos() Pos     { return s.P }
func (s *BreakStmt) Pos() Pos    { return s.P }
func (s *ContinueStmt) Pos() Pos { return s.P }
func (s *ReturnStmt) Pos() Pos   { return s.P }
func (s *CallStmt) Pos() Pos     { return s.P }
func (s *LabeledStmt) Pos() Pos  { return s.P }
func (s *EmptyStmt) Pos() Pos    { return s.P }

func (*AssignStmt) stmtNode()   {}
func (*ReadStmt) stmtNode()     {}
func (*WriteStmt) stmtNode()    {}
func (*IfStmt) stmtNode()       {}
func (*WhileStmt) stmtNode()    {}
func (*SwitchStmt) stmtNode()   {}
func (*BlockStmt) stmtNode()    {}
func (*GotoStmt) stmtNode()     {}
func (*BreakStmt) stmtNode()    {}
func (*ContinueStmt) stmtNode() {}
func (*ReturnStmt) stmtNode()   {}
func (*CallStmt) stmtNode()     {}
func (*LabeledStmt) stmtNode()  {}
func (*EmptyStmt) stmtNode()    {}

// IsJump reports whether s is one of the paper's jump statements:
// goto, break, continue, or return.
func IsJump(s Stmt) bool {
	switch s.(type) {
	case *GotoStmt, *BreakStmt, *ContinueStmt, *ReturnStmt:
		return true
	}
	return false
}

// ProcDecl is a procedure declaration:
//
//	proc name(a, b) { body }
//
// Parameters are integer variables passed value-result. Procedure
// bodies use the statement language unchanged — including every jump
// statement; a plain "return;" jumps to the procedure's exit — except
// that read statements and eof() calls are main-only (the input stream
// is global state a callee must not consume invisibly). A ProcDecl is
// a top-level declaration, not a statement: procedures do not nest.
type ProcDecl struct {
	P      Pos
	Name   string
	Params []string
	Body   []Stmt
	// Labels indexes the labels of this procedure's body. Label names
	// are scoped per procedure: a goto may only target a label in the
	// same procedure, and the same name may appear in different
	// procedures.
	Labels map[string]*LabeledStmt
}

// Pos returns the position of the proc keyword.
func (d *ProcDecl) Pos() Pos { return d.P }

// Program is a parsed program: a top-level statement sequence (the
// implicit main procedure) plus the label index built during parsing.
// Programs with procedure declarations also carry Procs; a program
// without them is exactly the single-procedure language of the paper.
type Program struct {
	Body []Stmt
	// Labels maps each label name of the main body to the labeled
	// statement carrying it. Parsing guarantees labels are unique
	// within their procedure and every goto target exists.
	Labels map[string]*LabeledStmt
	// Procs holds the procedure declarations in source order; nil for
	// single-procedure programs.
	Procs []*ProcDecl
}

// Proc returns the declaration of the named procedure, or nil.
func (p *Program) Proc(name string) *ProcDecl {
	for _, d := range p.Procs {
		if d.Name == name {
			return d
		}
	}
	return nil
}

// ---------------------------------------------------------------------
// Expression analysis helpers.

// ExprVars appends the names of all variables referenced by e to dst
// and returns the extended slice. Names may repeat.
func ExprVars(dst []string, e Expr) []string {
	switch e := e.(type) {
	case nil:
		return dst
	case *IntLit:
		return dst
	case *Ident:
		return append(dst, e.Name)
	case *CallExpr:
		for _, a := range e.Args {
			dst = ExprVars(dst, a)
		}
		return dst
	case *UnaryExpr:
		return ExprVars(dst, e.X)
	case *BinaryExpr:
		return ExprVars(ExprVars(dst, e.X), e.Y)
	}
	return dst
}

// ExprVarSet returns the sorted, de-duplicated set of variable names
// referenced by e.
func ExprVarSet(e Expr) []string {
	names := ExprVars(nil, e)
	if len(names) == 0 {
		return nil
	}
	sort.Strings(names)
	out := names[:1]
	for _, n := range names[1:] {
		if n != out[len(out)-1] {
			out = append(out, n)
		}
	}
	return out
}

// ExprCalls appends the names of all intrinsic functions called by e.
func ExprCalls(dst []string, e Expr) []string {
	switch e := e.(type) {
	case nil:
		return dst
	case *CallExpr:
		dst = append(dst, e.Name)
		for _, a := range e.Args {
			dst = ExprCalls(dst, a)
		}
		return dst
	case *UnaryExpr:
		return ExprCalls(dst, e.X)
	case *BinaryExpr:
		return ExprCalls(ExprCalls(dst, e.X), e.Y)
	}
	return dst
}

// Uses returns the sorted set of variables a statement reads directly
// (not through nested statements): the right-hand side of an
// assignment, the argument of write, the condition of if/while, the
// tag of switch, or the value of return.
func Uses(s Stmt) []string {
	switch s := s.(type) {
	case *AssignStmt:
		return ExprVarSet(s.Value)
	case *WriteStmt:
		return ExprVarSet(s.Value)
	case *IfStmt:
		return ExprVarSet(s.Cond)
	case *WhileStmt:
		return ExprVarSet(s.Cond)
	case *SwitchStmt:
		return ExprVarSet(s.Tag)
	case *ReturnStmt:
		return ExprVarSet(s.Value)
	case *CallStmt:
		var names []string
		for _, a := range s.Args {
			names = ExprVars(names, a)
		}
		return sortedSet(names)
	case *LabeledStmt:
		return Uses(s.Stmt)
	}
	return nil
}

// sortedSet sorts and de-duplicates names in place.
func sortedSet(names []string) []string {
	if len(names) == 0 {
		return nil
	}
	sort.Strings(names)
	out := names[:1]
	for _, n := range names[1:] {
		if n != out[len(out)-1] {
			out = append(out, n)
		}
	}
	return out
}

// CallCopyOuts returns the indices of c's arguments that receive a
// copy-out under value-result passing: plain identifier arguments,
// keeping only the last occurrence of each variable (the copy-backs
// run left to right, so the last write wins).
func CallCopyOuts(c *CallStmt) []int {
	last := map[string]int{}
	for i, a := range c.Args {
		if id, ok := a.(*Ident); ok {
			last[id.Name] = i
		}
	}
	if len(last) == 0 {
		return nil
	}
	out := make([]int, 0, len(last))
	for _, i := range last {
		out = append(out, i)
	}
	sort.Ints(out)
	return out
}

// CallOutVars returns the sorted set of variables a call statement
// defines: its plain-identifier arguments (value-result copy-out).
func CallOutVars(c *CallStmt) []string {
	var names []string
	for _, a := range c.Args {
		if id, ok := a.(*Ident); ok {
			names = append(names, id.Name)
		}
	}
	return sortedSet(names)
}

// Def returns the variable a statement defines directly, or "" if it
// defines none. Only assignments and reads define variables.
func Def(s Stmt) string {
	switch s := s.(type) {
	case *AssignStmt:
		return s.Name
	case *ReadStmt:
		return s.Name
	case *LabeledStmt:
		return Def(s.Stmt)
	}
	return ""
}

// Unlabel strips any LabeledStmt wrappers and returns the underlying
// statement. Multiple labels on one statement nest, so this loops.
func Unlabel(s Stmt) Stmt {
	for {
		l, ok := s.(*LabeledStmt)
		if !ok {
			return s
		}
		s = l.Stmt
	}
}

// Walk calls fn for every statement in the subtree rooted at s,
// including s itself, in lexical (source) order. LabeledStmt wrappers
// are visited before their inner statement.
func Walk(s Stmt, fn func(Stmt)) {
	if s == nil {
		return
	}
	fn(s)
	switch s := s.(type) {
	case *IfStmt:
		Walk(s.Then, fn)
		Walk(s.Else, fn)
	case *WhileStmt:
		Walk(s.Body, fn)
	case *SwitchStmt:
		for _, c := range s.Cases {
			for _, st := range c.Body {
				Walk(st, fn)
			}
		}
	case *BlockStmt:
		for _, st := range s.List {
			Walk(st, fn)
		}
	case *LabeledStmt:
		Walk(s.Stmt, fn)
	}
}

// WalkProgram calls fn for every statement of p in lexical order:
// procedure bodies in declaration order, then the main body.
func WalkProgram(p *Program, fn func(Stmt)) {
	for _, d := range p.Procs {
		for _, s := range d.Body {
			Walk(s, fn)
		}
	}
	for _, s := range p.Body {
		Walk(s, fn)
	}
}

// Statements returns every statement of p in lexical order, excluding
// LabeledStmt wrappers and empty statements (which have no dynamic
// behaviour of their own).
func Statements(p *Program) []Stmt {
	var out []Stmt
	WalkProgram(p, func(s Stmt) {
		switch s.(type) {
		case *LabeledStmt, *EmptyStmt, *BlockStmt:
		default:
			out = append(out, s)
		}
	})
	return out
}

// StmtAtLine returns the first non-wrapper statement whose position is
// on the given source line, or nil. Compound statements match on the
// line of their keyword (the paper numbers an if or while by its
// predicate's line).
func StmtAtLine(p *Program, line int) Stmt {
	var found Stmt
	WalkProgram(p, func(s Stmt) {
		if found != nil {
			return
		}
		switch s.(type) {
		case *LabeledStmt, *EmptyStmt, *BlockStmt:
			return
		}
		if s.Pos().Line == line {
			found = s
		}
	})
	return found
}

// VarNames returns the sorted set of all variable names appearing
// anywhere in the program (used or defined).
func VarNames(p *Program) []string {
	seen := map[string]bool{}
	WalkProgram(p, func(s Stmt) {
		if d := Def(s); d != "" {
			seen[d] = true
		}
		for _, u := range Uses(s) {
			seen[u] = true
		}
	})
	names := make([]string, 0, len(seen))
	for n := range seen {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// IntrinsicNames returns the sorted set of intrinsic function names
// called anywhere in the program.
func IntrinsicNames(p *Program) []string {
	seen := map[string]bool{}
	collect := func(e Expr) {
		for _, n := range ExprCalls(nil, e) {
			seen[n] = true
		}
	}
	WalkProgram(p, func(s Stmt) {
		switch s := s.(type) {
		case *AssignStmt:
			collect(s.Value)
		case *WriteStmt:
			collect(s.Value)
		case *IfStmt:
			collect(s.Cond)
		case *WhileStmt:
			collect(s.Cond)
		case *SwitchStmt:
			collect(s.Tag)
		case *ReturnStmt:
			collect(s.Value)
		case *CallStmt:
			for _, a := range s.Args {
				collect(a)
			}
		}
	})
	names := make([]string, 0, len(seen))
	for n := range seen {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
