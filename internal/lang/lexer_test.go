package lang

import (
	"strings"
	"testing"
	"testing/quick"
)

func kinds(toks []Token) []TokenKind {
	out := make([]TokenKind, len(toks))
	for i, t := range toks {
		out[i] = t.Kind
	}
	return out
}

func TestTokenizeSimpleAssignment(t *testing.T) {
	toks, err := Tokenize("x = x + 1;")
	if err != nil {
		t.Fatalf("Tokenize: %v", err)
	}
	want := []TokenKind{IDENT, Assign, IDENT, Plus, INT, Semi}
	got := kinds(toks)
	if len(got) != len(want) {
		t.Fatalf("got %d tokens %v, want %d", len(got), got, len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d: got %s, want %s", i, got[i], want[i])
		}
	}
}

func TestTokenizeKeywordsVsIdents(t *testing.T) {
	toks, err := Tokenize("while whilex if iffy goto gotoL break continue return read write switch case default else")
	if err != nil {
		t.Fatalf("Tokenize: %v", err)
	}
	want := []TokenKind{KwWhile, IDENT, KwIf, IDENT, KwGoto, IDENT, KwBreak,
		KwContinue, KwReturn, KwRead, KwWrite, KwSwitch, KwCase, KwDefault, KwElse}
	got := kinds(toks)
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d: got %s, want %s", i, got[i], want[i])
		}
	}
}

func TestTokenizeTwoCharOperators(t *testing.T) {
	toks, err := Tokenize("== != <= >= && || < > = !")
	if err != nil {
		t.Fatalf("Tokenize: %v", err)
	}
	want := []TokenKind{Eq, Neq, Leq, Geq, AndAnd, OrOr, Lt, Gt, Assign, Not}
	got := kinds(toks)
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d: got %s, want %s", i, got[i], want[i])
		}
	}
}

func TestTokenizePositions(t *testing.T) {
	src := "x = 1;\n  y = 2;"
	toks, err := Tokenize(src)
	if err != nil {
		t.Fatalf("Tokenize: %v", err)
	}
	if toks[0].Pos != (Pos{Line: 1, Col: 1}) {
		t.Errorf("x at %v, want 1:1", toks[0].Pos)
	}
	// "y" is the 5th token (x = 1 ; y ...), at line 2 col 3.
	if toks[4].Pos != (Pos{Line: 2, Col: 3}) {
		t.Errorf("y at %v, want 2:3", toks[4].Pos)
	}
}

func TestTokenizeComments(t *testing.T) {
	toks, err := Tokenize("x = 1; // trailing\n/* block\ncomment */ y = 2;")
	if err != nil {
		t.Fatalf("Tokenize: %v", err)
	}
	if len(toks) != 8 {
		t.Fatalf("got %d tokens %v, want 8", len(toks), toks)
	}
	if toks[4].Text != "y" {
		t.Errorf("token after comments = %v, want y", toks[4])
	}
	// The block comment spans lines, so y is on line 3.
	if toks[4].Pos.Line != 3 {
		t.Errorf("y line = %d, want 3", toks[4].Pos.Line)
	}
}

func TestTokenizeErrors(t *testing.T) {
	cases := []struct {
		src, wantSub string
	}{
		{"x = 1 @ 2;", "unexpected character"},
		{"x = a & b;", "did you mean '&&'"},
		{"x = a | b;", "did you mean '||'"},
		{"/* unterminated", "unterminated block comment"},
	}
	for _, c := range cases {
		_, err := Tokenize(c.src)
		if err == nil {
			t.Errorf("Tokenize(%q): expected error", c.src)
			continue
		}
		if !strings.Contains(err.Error(), c.wantSub) {
			t.Errorf("Tokenize(%q): error %q, want substring %q", c.src, err, c.wantSub)
		}
	}
}

func TestTokenizeEmptyAndWhitespace(t *testing.T) {
	for _, src := range []string{"", "   ", "\n\n\t", "// just a comment"} {
		toks, err := Tokenize(src)
		if err != nil {
			t.Errorf("Tokenize(%q): %v", src, err)
		}
		if len(toks) != 0 {
			t.Errorf("Tokenize(%q) = %v, want none", src, toks)
		}
	}
}

func TestLexerEOFIsSticky(t *testing.T) {
	lx := NewLexer("x")
	if tok := lx.Next(); tok.Kind != IDENT {
		t.Fatalf("first token %v", tok)
	}
	for i := 0; i < 3; i++ {
		if tok := lx.Next(); tok.Kind != EOF {
			t.Fatalf("token after end: %v", tok)
		}
	}
}

// TestLexerNeverPanics: arbitrary byte strings either tokenize or
// produce a SyntaxError — never a panic — and the lexer terminates.
func TestLexerNeverPanics(t *testing.T) {
	f := func(data []byte) bool {
		defer func() {
			if r := recover(); r != nil {
				t.Errorf("panic on %q: %v", data, r)
			}
		}()
		lx := NewLexer(string(data))
		for i := 0; i < len(data)+10; i++ {
			if tok := lx.Next(); tok.Kind == EOF {
				return true
			}
		}
		// Progress guarantee: at most one token per input byte.
		return false
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestParserNeverPanics: arbitrary byte strings either parse or error.
func TestParserNeverPanics(t *testing.T) {
	f := func(data []byte) bool {
		defer func() {
			if r := recover(); r != nil {
				t.Errorf("panic on %q: %v", data, r)
			}
		}()
		_, _ = Parse(string(data))
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
