package lang

import (
	"fmt"
	"strings"
)

// PrintOptions controls pretty-printing.
type PrintOptions struct {
	// LineNumbers prefixes each statement with its original source
	// line ("12: write(positives);"), reproducing the listings in the
	// paper's figures. Statements with line 0 (synthesized nodes) get
	// no prefix.
	LineNumbers bool
	// Indent is the indentation unit; default is four spaces.
	Indent string
}

type printer struct {
	opts  PrintOptions
	sb    strings.Builder
	depth int
}

// Format pretty-prints a whole program: procedure declarations first
// (in declaration order), then the main body. Procs-first is the
// canonical layout — re-parsing the output yields the same canonical
// form again even when the input interleaved declarations and
// statements.
func Format(p *Program, opts PrintOptions) string {
	pr := &printer{opts: opts}
	if pr.opts.Indent == "" {
		pr.opts.Indent = "    "
	}
	for _, d := range p.Procs {
		pr.proc(d)
	}
	for _, s := range p.Body {
		pr.stmt(s)
	}
	return pr.sb.String()
}

// proc prints one procedure declaration with its body indented.
func (pr *printer) proc(d *ProcDecl) {
	pr.line(d.P, "proc %s(%s) {", d.Name, strings.Join(d.Params, ", "))
	pr.depth++
	for _, s := range d.Body {
		pr.stmt(s)
	}
	pr.depth--
	pr.line(Pos{}, "}")
}

// FormatStmt pretty-prints a single statement subtree.
func FormatStmt(s Stmt, opts PrintOptions) string {
	pr := &printer{opts: opts}
	if pr.opts.Indent == "" {
		pr.opts.Indent = "    "
	}
	pr.stmt(s)
	return pr.sb.String()
}

func (pr *printer) line(pos Pos, format string, args ...any) {
	if pr.opts.LineNumbers {
		if pos.Line > 0 {
			fmt.Fprintf(&pr.sb, "%3d: ", pos.Line)
		} else {
			pr.sb.WriteString("     ")
		}
	}
	pr.sb.WriteString(strings.Repeat(pr.opts.Indent, pr.depth))
	fmt.Fprintf(&pr.sb, format, args...)
	pr.sb.WriteByte('\n')
}

func (pr *printer) stmt(s Stmt) {
	switch s := s.(type) {
	case nil:
	case *AssignStmt:
		pr.line(s.P, "%s = %s;", s.Name, ExprString(s.Value))
	case *ReadStmt:
		pr.line(s.P, "read(%s);", s.Name)
	case *WriteStmt:
		pr.line(s.P, "write(%s);", ExprString(s.Value))
	case *GotoStmt:
		pr.line(s.P, "goto %s;", s.Label)
	case *BreakStmt:
		pr.line(s.P, "break;")
	case *ContinueStmt:
		pr.line(s.P, "continue;")
	case *ReturnStmt:
		if s.Value != nil {
			pr.line(s.P, "return %s;", ExprString(s.Value))
		} else {
			pr.line(s.P, "return;")
		}
	case *CallStmt:
		pr.line(s.P, "%s", simpleStmtString(s))
	case *EmptyStmt:
		pr.line(s.P, ";")
	case *LabeledStmt:
		// The label shares its statement's line in the paper's style
		// ("8: L8: positives = positives + 1;"), but nested labels and
		// labels on compound statements are clearer on their own line
		// only when the inner statement is compound.
		switch inner := Unlabel(s).(type) {
		case *AssignStmt, *ReadStmt, *WriteStmt, *GotoStmt, *BreakStmt,
			*ContinueStmt, *ReturnStmt, *CallStmt, *EmptyStmt:
			pr.line(s.P, "%s%s", labelPrefix(s), simpleStmtString(inner))
		case *IfStmt:
			// Inline a labeled conditional jump:
			// "3: L3: if (eof()) goto L14;".
			if inner.Else == nil && IsJump(Unlabel(inner.Then)) {
				if _, wrapped := inner.Then.(*LabeledStmt); !wrapped {
					pr.line(s.P, "%sif (%s) %s", labelPrefix(s),
						ExprString(inner.Cond), simpleStmtString(Unlabel(inner.Then)))
					return
				}
			}
			pr.line(s.P, "%s", strings.TrimSuffix(labelPrefix(s), " "))
			pr.stmt(inner)
		default:
			pr.line(s.P, "%s", strings.TrimSuffix(labelPrefix(s), " "))
			pr.stmt(Unlabel(s))
		}
	case *BlockStmt:
		pr.line(s.P, "{")
		pr.depth++
		for _, st := range s.List {
			pr.stmt(st)
		}
		pr.depth--
		pr.line(Pos{}, "}")
	case *IfStmt:
		// The conditional-jump idiom prints on one line, matching the
		// paper's "3: L3: if (eof()) goto L14;" style.
		if s.Else == nil {
			if j, ok := s.Then.(Stmt); ok && IsJump(Unlabel(j)) {
				if _, isLabeled := j.(*LabeledStmt); !isLabeled {
					pr.line(s.P, "if (%s) %s", ExprString(s.Cond), simpleStmtString(Unlabel(j)))
					return
				}
			}
		}
		pr.line(s.P, "if (%s)%s", ExprString(s.Cond), braceOpen(s.Then))
		pr.body(s.Then)
		if s.Else != nil {
			pr.line(Pos{}, "else%s", braceOpen(s.Else))
			pr.body(s.Else)
		}
	case *WhileStmt:
		pr.line(s.P, "while (%s)%s", ExprString(s.Cond), braceOpen(s.Body))
		pr.body(s.Body)
	case *SwitchStmt:
		pr.line(s.P, "switch (%s) {", ExprString(s.Tag))
		for _, c := range s.Cases {
			if c.IsDefault {
				pr.line(c.P, "default:")
			} else {
				vals := make([]string, len(c.Values))
				for i, v := range c.Values {
					vals[i] = fmt.Sprintf("%d", v)
				}
				pr.line(c.P, "case %s:", strings.Join(vals, ", "))
			}
			pr.depth++
			for _, st := range c.Body {
				pr.stmt(st)
			}
			pr.depth--
		}
		pr.line(Pos{}, "}")
	default:
		pr.line(s.Pos(), "/* unknown statement %T */", s)
	}
}

// body prints the body of an if/while arm: blocks inline their braces,
// other statements are indented one level.
func (pr *printer) body(s Stmt) {
	if blk, ok := s.(*BlockStmt); ok {
		pr.depth++
		for _, st := range blk.List {
			pr.stmt(st)
		}
		pr.depth--
		pr.line(Pos{}, "}")
		return
	}
	pr.depth++
	pr.stmt(s)
	pr.depth--
}

func braceOpen(s Stmt) string {
	if _, ok := s.(*BlockStmt); ok {
		return " {"
	}
	return ""
}

// labelPrefix renders the (possibly nested) labels of s: "L8: ".
func labelPrefix(s Stmt) string {
	var sb strings.Builder
	for {
		l, ok := s.(*LabeledStmt)
		if !ok {
			return sb.String()
		}
		sb.WriteString(l.Label)
		sb.WriteString(": ")
		s = l.Stmt
	}
}

// simpleStmtString renders a simple (non-compound) statement without a
// trailing newline, for inlining after a label.
func simpleStmtString(s Stmt) string {
	switch s := s.(type) {
	case *AssignStmt:
		return fmt.Sprintf("%s = %s;", s.Name, ExprString(s.Value))
	case *ReadStmt:
		return fmt.Sprintf("read(%s);", s.Name)
	case *WriteStmt:
		return fmt.Sprintf("write(%s);", ExprString(s.Value))
	case *GotoStmt:
		return fmt.Sprintf("goto %s;", s.Label)
	case *BreakStmt:
		return "break;"
	case *ContinueStmt:
		return "continue;"
	case *ReturnStmt:
		if s.Value != nil {
			return fmt.Sprintf("return %s;", ExprString(s.Value))
		}
		return "return;"
	case *CallStmt:
		args := make([]string, len(s.Args))
		for i, a := range s.Args {
			args[i] = ExprString(a)
		}
		return fmt.Sprintf("call %s(%s);", s.Name, strings.Join(args, ", "))
	case *EmptyStmt:
		return ";"
	}
	return fmt.Sprintf("/* %T */", s)
}

// StmtString renders a one-line summary of a statement: simple
// statements in full, compound statements as their header ("if (x <=
// 0)", "switch (c())"). Used by graph visualizations and diagnostics.
func StmtString(s Stmt) string {
	s2 := Unlabel(s)
	switch s2 := s2.(type) {
	case *IfStmt:
		return fmt.Sprintf("if (%s)", ExprString(s2.Cond))
	case *WhileStmt:
		return fmt.Sprintf("while (%s)", ExprString(s2.Cond))
	case *SwitchStmt:
		return fmt.Sprintf("switch (%s)", ExprString(s2.Tag))
	case *BlockStmt:
		return "{...}"
	default:
		return labelPrefix(s) + simpleStmtString(s2)
	}
}

// precedence levels for minimal parenthesization when printing.
func exprPrec(e Expr) int {
	switch e := e.(type) {
	case *BinaryExpr:
		switch e.Op {
		case "||":
			return 1
		case "&&":
			return 2
		case "==", "!=", "<", "<=", ">", ">=":
			return 3
		case "+", "-":
			return 4
		default: // * / %
			return 5
		}
	case *UnaryExpr:
		return 6
	default:
		return 7
	}
}

// ExprString renders an expression with minimal parentheses.
func ExprString(e Expr) string {
	switch e := e.(type) {
	case nil:
		return ""
	case *IntLit:
		return fmt.Sprintf("%d", e.Value)
	case *Ident:
		return e.Name
	case *CallExpr:
		args := make([]string, len(e.Args))
		for i, a := range e.Args {
			args[i] = ExprString(a)
		}
		return fmt.Sprintf("%s(%s)", e.Name, strings.Join(args, ", "))
	case *UnaryExpr:
		x := ExprString(e.X)
		if exprPrec(e.X) < exprPrec(e) {
			x = "(" + x + ")"
		}
		return e.Op + x
	case *BinaryExpr:
		x, y := ExprString(e.X), ExprString(e.Y)
		if exprPrec(e.X) < exprPrec(e) {
			x = "(" + x + ")"
		}
		// Right operand needs parens at equal precedence too, since
		// all operators here are left-associative.
		if exprPrec(e.Y) <= exprPrec(e) {
			y = "(" + y + ")"
		}
		return fmt.Sprintf("%s %s %s", x, e.Op, y)
	}
	return fmt.Sprintf("/* %T */", e)
}
