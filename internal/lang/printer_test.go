package lang

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestFormatRoundTrip(t *testing.T) {
	srcs := []string{
		"x = 1;",
		"read(x); write(x + 1);",
		"if (x > 0) y = 1; else y = 2;",
		"while (!eof()) { read(x); s = s + x; }",
		"L1: if (eof()) goto L2;\ngoto L1;\nL2: write(s);",
		"switch (c()) { case 1: x = 1; break; case 2, 3: y = 2; default: z = 3; }",
		"while (1) { if (x) break; else continue; }",
		"return x % 2 == 0 && y < 3 || !z;",
	}
	for _, src := range srcs {
		p1 := MustParse(src)
		out1 := Format(p1, PrintOptions{})
		p2, err := Parse(out1)
		if err != nil {
			t.Errorf("re-parse of formatted %q failed: %v\noutput:\n%s", src, err, out1)
			continue
		}
		out2 := Format(p2, PrintOptions{})
		if out1 != out2 {
			t.Errorf("format not stable for %q:\nfirst:\n%s\nsecond:\n%s", src, out1, out2)
		}
	}
}

func TestFormatLineNumbers(t *testing.T) {
	src := "s = 0;\nwhile (s < 3) {\n    s = s + 1;\n}\nwrite(s);"
	p := MustParse(src)
	out := Format(p, PrintOptions{LineNumbers: true})
	for _, want := range []string{"  1: s = 0;", "  2: while (s < 3)", "  3: ", "  5: write(s);"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestFormatLabelsInlineWithSimpleStmt(t *testing.T) {
	p := MustParse("L8: positives = positives + 1; goto L8;")
	out := Format(p, PrintOptions{})
	if !strings.Contains(out, "L8: positives = positives + 1;") {
		t.Errorf("label not inlined:\n%s", out)
	}
}

func TestFormatLabelOnCompound(t *testing.T) {
	p := MustParse("Top: while (x) x = x - 1; goto Top;")
	out := Format(p, PrintOptions{})
	if !strings.Contains(out, "Top:") || !strings.Contains(out, "while (x)") {
		t.Errorf("compound label formatting wrong:\n%s", out)
	}
	// Must still re-parse.
	if _, err := Parse(out); err != nil {
		t.Errorf("formatted output does not re-parse: %v\n%s", err, out)
	}
}

func TestStmtStringSummaries(t *testing.T) {
	p := MustParse(`
x = f1(y);
if (x <= 0) x = 1;
while (!eof()) read(x);
switch (x) { case 1: ; }
L: goto L;
break_target = 0;`)
	cases := []struct {
		idx  int
		want string
	}{
		{0, "x = f1(y);"},
		{1, "if (x <= 0)"},
		{2, "while (!eof())"},
		{3, "switch (x)"},
		{4, "L: goto L;"},
	}
	for _, c := range cases {
		if got := StmtString(p.Body[c.idx]); got != c.want {
			t.Errorf("StmtString(stmt %d) = %q, want %q", c.idx, got, c.want)
		}
	}
}

func TestExprStringParenthesization(t *testing.T) {
	cases := []struct{ in, want string }{
		{"x = a * (b + c);", "a * (b + c)"},
		{"x = (a || b) && c;", "(a || b) && c"},
		{"x = -(a + b);", "-(a + b)"},
		{"x = a / b / c;", "a / b / c"},
		{"x = a / (b / c);", "a / (b / c)"},
	}
	for _, c := range cases {
		p := MustParse(c.in)
		got := ExprString(p.Body[0].(*AssignStmt).Value)
		if got != c.want {
			t.Errorf("ExprString(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

// Property: for expressions generated from a deterministic seed,
// parse(print(e)) prints identically — i.e. printing is a fixpoint
// under re-parsing, which guarantees the printer's parenthesization
// preserves structure.
func TestExprPrintParseFixpointProperty(t *testing.T) {
	ops := []string{"+", "-", "*", "/", "%", "<", "<=", ">", ">=", "==", "!=", "&&", "||"}
	var build func(seed uint64, depth int) Expr
	build = func(seed uint64, depth int) Expr {
		if depth <= 0 {
			if seed%2 == 0 {
				return &Ident{Name: string(rune('a' + seed%4))}
			}
			return &IntLit{Value: int64(seed % 10)}
		}
		switch seed % 3 {
		case 0:
			return &UnaryExpr{Op: []string{"!", "-"}[seed%2], X: build(seed/3, depth-1)}
		case 1:
			return &Ident{Name: string(rune('a' + seed%4))}
		default:
			op := ops[seed%uint64(len(ops))]
			return &BinaryExpr{Op: op, X: build(seed/5, depth-1), Y: build(seed/7, depth-1)}
		}
	}
	f := func(seed uint64) bool {
		e := build(seed, 5)
		src := "x = " + ExprString(e) + ";"
		p, err := Parse(src)
		if err != nil {
			return false
		}
		return ExprString(p.Body[0].(*AssignStmt).Value) == ExprString(e)
	}
	if err := quick.Check(f, quickConfig()); err != nil {
		t.Error(err)
	}
}

// quickConfig returns a shared testing/quick configuration with a
// deterministic-but-broad input count.
func quickConfig() *quick.Config {
	return &quick.Config{MaxCount: 200}
}
