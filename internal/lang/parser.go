package lang

import "fmt"

// Parser is a recursive-descent parser for the language. Use Parse or
// MustParse rather than constructing one directly.
type Parser struct {
	lx    *Lexer
	buf   []Token // lookahead buffer
	err   *SyntaxError
	prog  *Program
	depth int // current nesting depth, bounded by maxNestingDepth
	// labels is the label index of the scope being parsed: the main
	// body's map normally, swapped for the procedure's own map inside
	// a proc body (labels are scoped per procedure).
	labels map[string]*LabeledStmt
}

// maxNestingDepth bounds statement and expression nesting. The parser
// is recursive-descent, so an adversarial input like "{{{{..." or
// "!!!!..." otherwise converts input length into stack depth and
// overflows the goroutine stack (a crash no recover() can catch).
// Every downstream traversal — validation, AST walks, CFG and
// dependence construction — recurses along the same nesting, so this
// single bound protects the whole pipeline. One thousand levels is
// far beyond any human-written or generated program in the corpora.
const maxNestingDepth = 1000

// enter counts one nesting level, reporting whether parsing may
// recurse further; leave undoes it. On overflow it records a syntax
// error, which makes every parsing loop terminate promptly.
func (p *Parser) enter(pos Pos) bool {
	p.depth++
	if p.depth > maxNestingDepth {
		p.errorf(pos, "nesting too deep (more than %d levels)", maxNestingDepth)
		return false
	}
	return true
}

func (p *Parser) leave() { p.depth-- }

// Parse parses source text into a Program. It returns the first
// syntax or semantic error encountered (duplicate label, goto to an
// undefined label, break/continue outside a loop or switch, duplicate
// case value, multiple defaults).
func Parse(src string) (*Program, error) {
	p := &Parser{lx: NewLexer(src), prog: &Program{Labels: map[string]*LabeledStmt{}}}
	p.labels = p.prog.Labels
	for p.peek().Kind != EOF && p.err == nil {
		if p.peek().Kind == KwProc {
			p.prog.Procs = append(p.prog.Procs, p.parseProc())
			continue
		}
		p.prog.Body = append(p.prog.Body, p.parseStmt())
	}
	if p.err == nil {
		if lerr := p.lx.Err(); lerr != nil {
			return nil, lerr
		}
	}
	if p.err != nil {
		return nil, p.err
	}
	if err := p.validate(); err != nil {
		return nil, err
	}
	return p.prog, nil
}

// MustParse is Parse but panics on error. It is intended for the
// built-in corpus and tests, where the source is known-good.
func MustParse(src string) *Program {
	prog, err := Parse(src)
	if err != nil {
		panic(fmt.Sprintf("lang.MustParse: %v", err))
	}
	return prog
}

func (p *Parser) errorf(pos Pos, format string, args ...any) {
	if p.err == nil {
		p.err = &SyntaxError{Pos: pos, Msg: fmt.Sprintf(format, args...)}
	}
}

func (p *Parser) peek() Token { return p.peekN(0) }

func (p *Parser) peekN(n int) Token {
	for len(p.buf) <= n {
		p.buf = append(p.buf, p.lx.Next())
	}
	return p.buf[n]
}

func (p *Parser) next() Token {
	t := p.peek()
	p.buf = p.buf[1:]
	return t
}

func (p *Parser) expect(k TokenKind) Token {
	t := p.peek()
	if t.Kind != k {
		p.errorf(t.Pos, "expected %s, found %s", k, t)
		return Token{Kind: k, Pos: t.Pos}
	}
	return p.next()
}

// ---------------------------------------------------------------------
// Statements.

func (p *Parser) parseStmt() Stmt {
	t := p.peek()
	if p.err != nil {
		// Error recovery is deliberately absent: return an empty
		// statement so parsing terminates promptly after the first
		// error.
		return &EmptyStmt{P: t.Pos}
	}
	if !p.enter(t.Pos) {
		return &EmptyStmt{P: t.Pos}
	}
	defer p.leave()
	switch t.Kind {
	case IDENT:
		if p.peekN(1).Kind == Colon {
			return p.parseLabeled()
		}
		return p.parseAssign()
	case KwIf:
		return p.parseIf()
	case KwWhile:
		return p.parseWhile()
	case KwSwitch:
		return p.parseSwitch()
	case LBrace:
		return p.parseBlock()
	case KwGoto:
		p.next()
		target := p.expect(IDENT)
		p.expect(Semi)
		return &GotoStmt{P: t.Pos, Label: target.Text}
	case KwBreak:
		p.next()
		p.expect(Semi)
		return &BreakStmt{P: t.Pos}
	case KwContinue:
		p.next()
		p.expect(Semi)
		return &ContinueStmt{P: t.Pos}
	case KwReturn:
		p.next()
		var val Expr
		if p.peek().Kind != Semi {
			val = p.parseExpr()
		}
		p.expect(Semi)
		return &ReturnStmt{P: t.Pos, Value: val}
	case KwRead:
		p.next()
		p.expect(LParen)
		name := p.expect(IDENT)
		p.expect(RParen)
		p.expect(Semi)
		return &ReadStmt{P: t.Pos, Name: name.Text}
	case KwWrite:
		p.next()
		p.expect(LParen)
		val := p.parseExpr()
		p.expect(RParen)
		p.expect(Semi)
		return &WriteStmt{P: t.Pos, Value: val}
	case KwCall:
		p.next()
		name := p.expect(IDENT)
		c := &CallStmt{P: t.Pos, Name: name.Text}
		p.expect(LParen)
		if p.peek().Kind != RParen {
			for {
				c.Args = append(c.Args, p.parseExpr())
				if p.peek().Kind != Comma {
					break
				}
				p.next()
			}
		}
		p.expect(RParen)
		p.expect(Semi)
		return c
	case KwProc:
		p.errorf(t.Pos, "procedure declarations are only allowed at the top level")
		p.next()
		return &EmptyStmt{P: t.Pos}
	case Semi:
		p.next()
		return &EmptyStmt{P: t.Pos}
	default:
		p.errorf(t.Pos, "expected statement, found %s", t)
		p.next()
		return &EmptyStmt{P: t.Pos}
	}
}

func (p *Parser) parseLabeled() Stmt {
	name := p.expect(IDENT)
	p.expect(Colon)
	inner := p.parseStmt()
	l := &LabeledStmt{P: name.Pos, Label: name.Text, Stmt: inner}
	if _, dup := p.labels[name.Text]; dup {
		p.errorf(name.Pos, "duplicate label %q", name.Text)
	} else {
		p.labels[name.Text] = l
	}
	return l
}

// parseProc parses one top-level procedure declaration:
//
//	proc name(a, b) { body }
//
// The body parses in its own label scope; nested proc declarations
// are rejected by parseStmt (KwProc is not a statement keyword).
func (p *Parser) parseProc() *ProcDecl {
	t := p.expect(KwProc)
	name := p.expect(IDENT)
	d := &ProcDecl{P: t.Pos, Name: name.Text, Labels: map[string]*LabeledStmt{}}
	p.expect(LParen)
	if p.peek().Kind != RParen {
		for {
			d.Params = append(d.Params, p.expect(IDENT).Text)
			if p.peek().Kind != Comma {
				break
			}
			p.next()
		}
	}
	p.expect(RParen)
	p.expect(LBrace)
	outer := p.labels
	p.labels = d.Labels
	for p.err == nil && p.peek().Kind != RBrace {
		if p.peek().Kind == EOF {
			p.errorf(t.Pos, "unterminated procedure body (missing '}')")
			break
		}
		d.Body = append(d.Body, p.parseStmt())
	}
	p.labels = outer
	p.expect(RBrace)
	return d
}

func (p *Parser) parseAssign() Stmt {
	name := p.expect(IDENT)
	p.expect(Assign)
	val := p.parseExpr()
	p.expect(Semi)
	return &AssignStmt{P: name.Pos, Name: name.Text, Value: val}
}

func (p *Parser) parseIf() Stmt {
	t := p.expect(KwIf)
	p.expect(LParen)
	cond := p.parseExpr()
	p.expect(RParen)
	then := p.parseStmt()
	var els Stmt
	if p.peek().Kind == KwElse {
		p.next()
		els = p.parseStmt()
	}
	return &IfStmt{P: t.Pos, Cond: cond, Then: then, Else: els}
}

func (p *Parser) parseWhile() Stmt {
	t := p.expect(KwWhile)
	p.expect(LParen)
	cond := p.parseExpr()
	p.expect(RParen)
	body := p.parseStmt()
	return &WhileStmt{P: t.Pos, Cond: cond, Body: body}
}

func (p *Parser) parseSwitch() Stmt {
	t := p.expect(KwSwitch)
	p.expect(LParen)
	tag := p.parseExpr()
	p.expect(RParen)
	p.expect(LBrace)
	sw := &SwitchStmt{P: t.Pos, Tag: tag}
	for p.err == nil {
		tok := p.peek()
		switch tok.Kind {
		case KwCase:
			p.next()
			c := &CaseClause{P: tok.Pos}
			for {
				v := p.expect(INT)
				var n int64
				fmt.Sscanf(v.Text, "%d", &n)
				c.Values = append(c.Values, n)
				if p.peek().Kind != Comma {
					break
				}
				p.next()
			}
			p.expect(Colon)
			c.Body = p.parseCaseBody()
			sw.Cases = append(sw.Cases, c)
		case KwDefault:
			p.next()
			p.expect(Colon)
			c := &CaseClause{P: tok.Pos, IsDefault: true}
			c.Body = p.parseCaseBody()
			sw.Cases = append(sw.Cases, c)
		case RBrace:
			p.next()
			return sw
		default:
			p.errorf(tok.Pos, "expected 'case', 'default' or '}' in switch, found %s", tok)
			return sw
		}
	}
	return sw
}

// parseCaseBody parses statements until the next case, default, or the
// closing brace of the switch.
func (p *Parser) parseCaseBody() []Stmt {
	var body []Stmt
	for p.err == nil {
		switch p.peek().Kind {
		case KwCase, KwDefault, RBrace, EOF:
			return body
		}
		body = append(body, p.parseStmt())
	}
	return body
}

func (p *Parser) parseBlock() Stmt {
	t := p.expect(LBrace)
	blk := &BlockStmt{P: t.Pos}
	for p.err == nil && p.peek().Kind != RBrace {
		if p.peek().Kind == EOF {
			p.errorf(t.Pos, "unterminated block (missing '}')")
			return blk
		}
		blk.List = append(blk.List, p.parseStmt())
	}
	p.expect(RBrace)
	return blk
}

// ---------------------------------------------------------------------
// Expressions (precedence climbing).

func (p *Parser) parseExpr() Expr { return p.parseOr() }

func (p *Parser) parseOr() Expr {
	x := p.parseAnd()
	for p.peek().Kind == OrOr {
		t := p.next()
		x = &BinaryExpr{P: t.Pos, Op: "||", X: x, Y: p.parseAnd()}
	}
	return x
}

func (p *Parser) parseAnd() Expr {
	x := p.parseCmp()
	for p.peek().Kind == AndAnd {
		t := p.next()
		x = &BinaryExpr{P: t.Pos, Op: "&&", X: x, Y: p.parseCmp()}
	}
	return x
}

var cmpOps = map[TokenKind]string{
	Eq: "==", Neq: "!=", Lt: "<", Leq: "<=", Gt: ">", Geq: ">=",
}

func (p *Parser) parseCmp() Expr {
	x := p.parseAdd()
	for {
		op, ok := cmpOps[p.peek().Kind]
		if !ok {
			return x
		}
		t := p.next()
		x = &BinaryExpr{P: t.Pos, Op: op, X: x, Y: p.parseAdd()}
	}
}

func (p *Parser) parseAdd() Expr {
	x := p.parseMul()
	for {
		var op string
		switch p.peek().Kind {
		case Plus:
			op = "+"
		case Minus:
			op = "-"
		default:
			return x
		}
		t := p.next()
		x = &BinaryExpr{P: t.Pos, Op: op, X: x, Y: p.parseMul()}
	}
}

func (p *Parser) parseMul() Expr {
	x := p.parseUnary()
	for {
		var op string
		switch p.peek().Kind {
		case Star:
			op = "*"
		case Slash:
			op = "/"
		case Percent:
			op = "%"
		default:
			return x
		}
		t := p.next()
		x = &BinaryExpr{P: t.Pos, Op: op, X: x, Y: p.parseUnary()}
	}
}

func (p *Parser) parseUnary() Expr {
	// parseUnary is on every cycle of the expression grammar — unary
	// operators directly, parenthesized and call-argument expressions
	// through parsePrimary — so counting depth here bounds them all.
	if !p.enter(p.peek().Pos) {
		return &IntLit{P: p.peek().Pos}
	}
	defer p.leave()
	switch p.peek().Kind {
	case Not:
		t := p.next()
		return &UnaryExpr{P: t.Pos, Op: "!", X: p.parseUnary()}
	case Minus:
		t := p.next()
		return &UnaryExpr{P: t.Pos, Op: "-", X: p.parseUnary()}
	}
	return p.parsePrimary()
}

func (p *Parser) parsePrimary() Expr {
	t := p.peek()
	switch t.Kind {
	case INT:
		p.next()
		var n int64
		fmt.Sscanf(t.Text, "%d", &n)
		return &IntLit{P: t.Pos, Value: n}
	case IDENT:
		p.next()
		if p.peek().Kind == LParen {
			p.next()
			call := &CallExpr{P: t.Pos, Name: t.Text}
			if p.peek().Kind != RParen {
				for {
					call.Args = append(call.Args, p.parseExpr())
					if p.peek().Kind != Comma {
						break
					}
					p.next()
				}
			}
			p.expect(RParen)
			return call
		}
		return &Ident{P: t.Pos, Name: t.Text}
	case LParen:
		p.next()
		x := p.parseExpr()
		p.expect(RParen)
		return x
	default:
		p.errorf(t.Pos, "expected expression, found %s", t)
		p.next()
		return &IntLit{P: t.Pos}
	}
}

// ---------------------------------------------------------------------
// Post-parse validation.

// validate checks context-sensitive rules: goto targets exist in the
// same procedure scope, break/continue are properly enclosed, switch
// cases are well-formed, procedure names and parameters are unique,
// every call names a declared procedure with matching arity, and
// procedure bodies neither read input (read statements, eof() calls —
// the input stream is main-only global state) nor return a value.
func (p *Parser) validate() error {
	var err error
	report := func(pos Pos, format string, args ...any) {
		if err == nil {
			err = &SyntaxError{Pos: pos, Msg: fmt.Sprintf(format, args...)}
		}
	}

	var check func(labels map[string]*LabeledStmt, s Stmt, inLoop, inSwitch, inProc bool)
	check = func(labels map[string]*LabeledStmt, s Stmt, inLoop, inSwitch, inProc bool) {
		if inProc {
			for _, fn := range stmtIntrinsics(s) {
				if fn == "eof" {
					report(s.Pos(), "eof() is not allowed in a procedure body (input is read by main)")
				}
			}
		}
		switch s := s.(type) {
		case nil:
		case *GotoStmt:
			if _, ok := labels[s.Label]; !ok {
				report(s.P, "goto to undefined label %q", s.Label)
			}
		case *BreakStmt:
			if !inLoop && !inSwitch {
				report(s.P, "break outside loop or switch")
			}
		case *ContinueStmt:
			if !inLoop {
				report(s.P, "continue outside loop")
			}
		case *ReadStmt:
			if inProc {
				report(s.P, "read is not allowed in a procedure body (input is read by main)")
			}
		case *ReturnStmt:
			if inProc && s.Value != nil {
				report(s.P, "return with a value is not allowed in a procedure body")
			}
		case *IfStmt:
			check(labels, s.Then, inLoop, inSwitch, inProc)
			check(labels, s.Else, inLoop, inSwitch, inProc)
		case *WhileStmt:
			check(labels, s.Body, true, false, inProc)
		case *SwitchStmt:
			seen := map[int64]bool{}
			defaults := 0
			for _, c := range s.Cases {
				if c.IsDefault {
					defaults++
					if defaults > 1 {
						report(c.P, "multiple default clauses in switch")
					}
				}
				for _, v := range c.Values {
					if seen[v] {
						report(c.P, "duplicate case value %d", v)
					}
					seen[v] = true
				}
				for _, st := range c.Body {
					check(labels, st, inLoop, true, inProc)
				}
			}
		case *BlockStmt:
			for _, st := range s.List {
				check(labels, st, inLoop, inSwitch, inProc)
			}
		case *LabeledStmt:
			check(labels, s.Stmt, inLoop, inSwitch, inProc)
		}
	}

	procs := map[string]*ProcDecl{}
	for _, d := range p.prog.Procs {
		if d.Name == "main" {
			report(d.P, "procedure cannot be named %q (the top-level body is main)", d.Name)
		}
		if _, dup := procs[d.Name]; dup {
			report(d.P, "duplicate procedure %q", d.Name)
		}
		procs[d.Name] = d
		seen := map[string]bool{}
		for _, prm := range d.Params {
			if seen[prm] {
				report(d.P, "duplicate parameter %q in procedure %q", prm, d.Name)
			}
			seen[prm] = true
		}
		for _, s := range d.Body {
			check(d.Labels, s, false, false, true)
		}
	}
	for _, s := range p.prog.Body {
		check(p.prog.Labels, s, false, false, false)
	}
	WalkProgram(p.prog, func(s Stmt) {
		c, ok := s.(*CallStmt)
		if !ok {
			return
		}
		d, declared := procs[c.Name]
		if !declared {
			report(c.P, "call to undefined procedure %q", c.Name)
			return
		}
		if len(c.Args) != len(d.Params) {
			report(c.P, "call to %q has %d arguments, want %d", c.Name, len(c.Args), len(d.Params))
		}
	})
	return err
}

// stmtIntrinsics returns the intrinsic functions called directly by
// one statement's expressions (not through nested statements).
func stmtIntrinsics(s Stmt) []string {
	switch s := s.(type) {
	case *AssignStmt:
		return ExprCalls(nil, s.Value)
	case *WriteStmt:
		return ExprCalls(nil, s.Value)
	case *IfStmt:
		return ExprCalls(nil, s.Cond)
	case *WhileStmt:
		return ExprCalls(nil, s.Cond)
	case *SwitchStmt:
		return ExprCalls(nil, s.Tag)
	case *ReturnStmt:
		return ExprCalls(nil, s.Value)
	case *CallStmt:
		var out []string
		for _, a := range s.Args {
			out = ExprCalls(out, a)
		}
		return out
	}
	return nil
}
