// Package lang implements the small imperative language the slicer
// operates on. The language is a C-like subset chosen to express every
// example program in Agrawal's "On Slicing Programs with Jump
// Statements" (PLDI 1994): integer variables, assignments, read/write
// I/O statements, if/else, while, C-style switch with fall-through,
// and the four jump statements the paper studies — goto (with labels),
// break, continue, and return.
//
// The package provides a lexer, a recursive-descent parser producing a
// position-annotated AST, a pretty-printer that can reproduce the
// paper's "line-number: statement" listings, and small analysis
// helpers (variable use/def sets, AST walking).
package lang

import "fmt"

// TokenKind enumerates the lexical token classes of the language.
type TokenKind int

// Token kinds. Keywords are distinguished from identifiers by the
// lexer so that the parser never confuses a variable named, say,
// "while" with the loop keyword (such variables are simply illegal).
const (
	EOF TokenKind = iota
	IDENT
	INT

	// Keywords.
	KwIf
	KwElse
	KwWhile
	KwSwitch
	KwCase
	KwDefault
	KwGoto
	KwBreak
	KwContinue
	KwReturn
	KwRead
	KwWrite
	KwProc
	KwCall

	// Punctuation and operators.
	LParen  // (
	RParen  // )
	LBrace  // {
	RBrace  // }
	Semi    // ;
	Colon   // :
	Comma   // ,
	Assign  // =
	Eq      // ==
	Neq     // !=
	Lt      // <
	Leq     // <=
	Gt      // >
	Geq     // >=
	Plus    // +
	Minus   // -
	Star    // *
	Slash   // /
	Percent // %
	Not     // !
	AndAnd  // &&
	OrOr    // ||
)

var tokenNames = map[TokenKind]string{
	EOF:        "end of input",
	IDENT:      "identifier",
	INT:        "integer literal",
	KwIf:       "'if'",
	KwElse:     "'else'",
	KwWhile:    "'while'",
	KwSwitch:   "'switch'",
	KwCase:     "'case'",
	KwDefault:  "'default'",
	KwGoto:     "'goto'",
	KwBreak:    "'break'",
	KwContinue: "'continue'",
	KwReturn:   "'return'",
	KwRead:     "'read'",
	KwWrite:    "'write'",
	KwProc:     "'proc'",
	KwCall:     "'call'",
	LParen:     "'('",
	RParen:     "')'",
	LBrace:     "'{'",
	RBrace:     "'}'",
	Semi:       "';'",
	Colon:      "':'",
	Comma:      "','",
	Assign:     "'='",
	Eq:         "'=='",
	Neq:        "'!='",
	Lt:         "'<'",
	Leq:        "'<='",
	Gt:         "'>'",
	Geq:        "'>='",
	Plus:       "'+'",
	Minus:      "'-'",
	Star:       "'*'",
	Slash:      "'/'",
	Percent:    "'%'",
	Not:        "'!'",
	AndAnd:     "'&&'",
	OrOr:       "'||'",
}

// String returns a human-readable name for the token kind, suitable
// for diagnostics ("expected ';', found 'else'").
func (k TokenKind) String() string {
	if s, ok := tokenNames[k]; ok {
		return s
	}
	return fmt.Sprintf("TokenKind(%d)", int(k))
}

var keywords = map[string]TokenKind{
	"if":       KwIf,
	"else":     KwElse,
	"while":    KwWhile,
	"switch":   KwSwitch,
	"case":     KwCase,
	"default":  KwDefault,
	"goto":     KwGoto,
	"break":    KwBreak,
	"continue": KwContinue,
	"return":   KwReturn,
	"read":     KwRead,
	"write":    KwWrite,
	"proc":     KwProc,
	"call":     KwCall,
}

// Pos is a source position. Lines and columns are 1-based; the line
// number doubles as the statement identifier used in slicing criteria,
// exactly as in the paper's "slice with respect to positives on line
// 12".
type Pos struct {
	Line int
	Col  int
}

// String formats the position as "line:col".
func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// Token is a single lexical token with its source position. Text holds
// the identifier spelling or literal digits; it is empty for
// fixed-spelling tokens.
type Token struct {
	Kind TokenKind
	Text string
	Pos  Pos
}

// String renders the token for diagnostics.
func (t Token) String() string {
	switch t.Kind {
	case IDENT, INT:
		return fmt.Sprintf("%s %q", t.Kind, t.Text)
	default:
		return t.Kind.String()
	}
}
