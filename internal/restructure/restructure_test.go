package restructure

import (
	"reflect"
	"testing"

	"jumpslice/internal/core"
	"jumpslice/internal/interp"
	"jumpslice/internal/lang"
	"jumpslice/internal/paper"
	"jumpslice/internal/progen"
)

var inputs = [][]int64{nil, {1, 2, 3}, {-5, 7, 0, 2, 9, -1}, {8, 8, -8, 8}}

// TestRestructuredEquivalenceOnCorpus: the pc-loop form of every
// corpus program produces the same writes and the same criterion
// observations as the original.
func TestRestructuredEquivalenceOnCorpus(t *testing.T) {
	for _, f := range paper.All() {
		f := f
		t.Run(f.Name, func(t *testing.T) {
			orig := f.Parse()
			flat, err := Program(orig)
			if err != nil {
				t.Fatal(err)
			}
			for _, in := range inputs {
				wantRes, err := interp.Run(orig, interp.Options{
					Input: in, ObserveVar: f.Criterion.Var, ObserveLine: f.Criterion.Line})
				if err != nil {
					t.Fatal(err)
				}
				gotRes, err := interp.Run(flat, interp.Options{
					Input: in, ObserveVar: f.Criterion.Var, ObserveLine: f.Criterion.Line,
					MaxSteps: 2000000})
				if err != nil {
					t.Fatalf("restructured: %v", err)
				}
				if !reflect.DeepEqual(gotRes.Output, wantRes.Output) {
					t.Errorf("input %v: output %v, want %v", in, gotRes.Output, wantRes.Output)
				}
				if !reflect.DeepEqual(gotRes.Observations, wantRes.Observations) {
					t.Errorf("input %v: observations %v, want %v",
						in, gotRes.Observations, wantRes.Observations)
				}
			}
		})
	}
}

// TestRestructuredIsStructured: the output is a structured program in
// the paper's sense (and contains no gotos at all).
func TestRestructuredIsStructured(t *testing.T) {
	for _, f := range paper.All() {
		flat, err := Program(f.Parse())
		if err != nil {
			t.Fatalf("%s: %v", f.Name, err)
		}
		a, err := core.Analyze(flat)
		if err != nil {
			t.Fatalf("%s: %v", f.Name, err)
		}
		if !a.Structured() {
			t.Errorf("%s: restructured program is not structured", f.Name)
		}
		lang.WalkProgram(flat, func(s lang.Stmt) {
			if _, ok := s.(*lang.GotoStmt); ok {
				t.Errorf("%s: restructured program contains a goto", f.Name)
			}
		})
	}
}

// TestFigure12OnRestructuredGotoProgram: the Ball–Horwitz Section 5
// pathway, end to end — restructure the paper's Figure 3-a goto
// program, then run the structured-programs-only Figure 12 algorithm
// on it, and check the slice still behaves correctly.
func TestFigure12OnRestructuredGotoProgram(t *testing.T) {
	f := paper.Fig3()
	orig := f.Parse()
	flat, err := Program(orig)
	if err != nil {
		t.Fatal(err)
	}
	a, err := core.Analyze(flat)
	if err != nil {
		t.Fatal(err)
	}
	c := core.Criterion{Var: f.Criterion.Var, Line: f.Criterion.Line}
	s, err := a.AgrawalStructured(c)
	if err != nil {
		t.Fatalf("Figure 12 on the restructured program: %v", err)
	}
	sliced := s.Materialize()
	for _, in := range inputs {
		want, err := interp.Observe(orig, in, c.Var, c.Line)
		if err != nil {
			t.Fatal(err)
		}
		got, err := interp.Observe(sliced, in, c.Var, c.Line)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("input %v: slice of restructured observes %v, original %v", in, got, want)
		}
	}
}

// TestRestructurePropertyOverGeneratedPrograms: equivalence over both
// random corpora.
func TestRestructurePropertyOverGeneratedPrograms(t *testing.T) {
	for name, gen := range map[string]func(progen.Config) *lang.Program{
		"structured":   progen.Structured,
		"unstructured": progen.Unstructured,
	} {
		t.Run(name, func(t *testing.T) {
			for seed := int64(0); seed < 40; seed++ {
				p := gen(progen.Config{Seed: seed, Stmts: 30})
				flat, err := Program(p)
				if err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				for _, in := range inputs {
					want, err := interp.Run(p, interp.Options{Input: in})
					if err != nil {
						t.Fatal(err)
					}
					got, err := interp.Run(flat, interp.Options{Input: in, MaxSteps: 2000000})
					if err != nil {
						t.Fatalf("seed %d input %v: %v", seed, in, err)
					}
					if !reflect.DeepEqual(got.Output, want.Output) {
						t.Errorf("seed %d input %v: output %v, want %v",
							seed, in, got.Output, want.Output)
					}
					if got.Returned != want.Returned || got.Value != want.Value {
						t.Errorf("seed %d input %v: return (%v,%d), want (%v,%d)",
							seed, in, got.Returned, got.Value, want.Returned, want.Value)
					}
				}
			}
		})
	}
}

// TestFreshNameAvoidsCollision: a program already using "pc" gets a
// different counter variable.
func TestFreshNameAvoidsCollision(t *testing.T) {
	p := lang.MustParse("pc = 7;\npctag = 1;\nwrite(pc + pctag);")
	flat, err := Program(p)
	if err != nil {
		t.Fatal(err)
	}
	res, err := interp.Run(flat, interp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Output, []int64{8}) {
		t.Errorf("output = %v, want [8] — counter variable collided", res.Output)
	}
}

// TestRestructureRoundTrips: the output parses and can itself be
// restructured again (idempotent in behaviour).
func TestRestructureRoundTrips(t *testing.T) {
	p := paper.Fig8().Parse()
	once, err := Program(p)
	if err != nil {
		t.Fatal(err)
	}
	twice, err := Program(once)
	if err != nil {
		t.Fatal(err)
	}
	in := []int64{3, -1, 4}
	a, err := interp.Run(p, interp.Options{Input: in})
	if err != nil {
		t.Fatal(err)
	}
	b, err := interp.Run(twice, interp.Options{Input: in, MaxSteps: 5000000})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Output, b.Output) {
		t.Errorf("double-restructured output %v, want %v", b.Output, a.Output)
	}
}
