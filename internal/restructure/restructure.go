// Package restructure converts arbitrary programs — goto tangles
// included — into structured programs (the paper's Section 4 sense:
// no jump whose target is not a lexical successor; in fact the output
// contains no goto at all).
//
// It implements the pathway Ball & Horwitz sketch at the end of the
// paper's Section 5: instead of deciding which original jumps a slice
// keeps, "apply a flowgraph structuring algorithm [4] on the flowgraph
// induced by the statements included in the slice". The structuring
// algorithm here is the classic single-loop ("pc-loop", folklore /
// Harel) transformation rather than Baker's — every flowgraph node
// becomes a case of one switch inside one while, dispatched on an
// explicit program counter:
//
//	pc = <entry>;
//	while (pc != <exit>) {
//	    switch (pc) {
//	    case n: <statement n>; pc = <successor>; break;
//	    ...
//	    }
//	}
//
// The output computes exactly what the input does (same writes, same
// criterion observations — property-tested), original statements keep
// their source positions (so line-based criteria still work), and the
// only jumps are the switch's break statements and any original
// returns — both structured. In particular, the Figure 12 algorithm
// becomes applicable to restructured versions of the paper's goto
// programs.
package restructure

import (
	"fmt"
	"sort"

	"jumpslice/internal/cfg"
	"jumpslice/internal/lang"
)

// Program restructures a whole program into pc-loop form.
func Program(prog *lang.Program) (*lang.Program, error) {
	g, err := cfg.Build(prog)
	if err != nil {
		return nil, err
	}
	return FromCFG(g)
}

// FromCFG restructures the program behind an already-built flowgraph.
func FromCFG(g *cfg.Graph) (*lang.Program, error) {
	pcName := freshName(g.Prog, "pc")
	tagName := freshName(g.Prog, "pctag")

	pc := func() lang.Expr { return &lang.Ident{Name: pcName} }
	setPC := func(target int) lang.Stmt {
		return &lang.AssignStmt{Name: pcName, Value: &lang.IntLit{Value: int64(target)}}
	}

	// One switch case per reachable statement node, in ID order.
	reach := g.Reachable()
	var ids []int
	for _, n := range g.Nodes {
		if n.Kind == cfg.KindEntry || n.Kind == cfg.KindExit || !reach[n.ID] {
			continue
		}
		ids = append(ids, n.ID)
	}
	sort.Ints(ids)

	sw := &lang.SwitchStmt{Tag: pc()}
	for _, id := range ids {
		n := g.Nodes[id]
		body, err := caseBody(g, n, setPC, tagName)
		if err != nil {
			return nil, err
		}
		body = append(body, &lang.BreakStmt{})
		sw.Cases = append(sw.Cases, &lang.CaseClause{
			Values: []int64{int64(id)},
			Body:   body,
		})
	}

	// Initial pc: the entry's program successor (its "T" edge).
	first := g.Exit.ID
	for _, e := range g.Entry.Out {
		if e.Label == "T" {
			first = e.To
		}
	}

	loop := &lang.WhileStmt{
		Cond: &lang.BinaryExpr{Op: "!=", X: pc(), Y: &lang.IntLit{Value: int64(g.Exit.ID)}},
		Body: &lang.BlockStmt{List: []lang.Stmt{sw}},
	}
	out := &lang.Program{
		Body:   []lang.Stmt{setPC(first), loop},
		Labels: map[string]*lang.LabeledStmt{},
	}
	// Validate well-formedness through the printer/parser; return the
	// in-memory AST so original statement positions survive.
	if _, err := lang.Parse(lang.Format(out, lang.PrintOptions{})); err != nil {
		return nil, fmt.Errorf("restructure: output does not parse: %w", err)
	}
	return out, nil
}

// caseBody emits the pc-loop case for one flowgraph node.
func caseBody(g *cfg.Graph, n *cfg.Node, setPC func(int) lang.Stmt, tagName string) ([]lang.Stmt, error) {
	switch n.Kind {
	case cfg.KindAssign, cfg.KindRead, cfg.KindWrite:
		// The statement itself (label wrappers dropped — there are no
		// gotos left to target them), then the successor.
		return []lang.Stmt{lang.Unlabel(n.Stmt), setPC(n.Out[0].To)}, nil
	case cfg.KindSkip:
		return []lang.Stmt{setPC(n.Out[0].To)}, nil
	case cfg.KindGoto, cfg.KindBreak, cfg.KindContinue:
		// Pure control transfer: becomes a pc assignment.
		return []lang.Stmt{setPC(n.Out[0].To)}, nil
	case cfg.KindReturn:
		// Keep the return: it exits the pc-loop and the program alike,
		// and it is a structured jump.
		return []lang.Stmt{lang.Unlabel(n.Stmt)}, nil
	case cfg.KindPredicate:
		cond := predicateCond(n.Stmt)
		var tTo, fTo int
		for _, e := range n.Out {
			switch e.Label {
			case "T":
				tTo = e.To
			case "F":
				fTo = e.To
			}
		}
		return []lang.Stmt{&lang.IfStmt{
			P:    n.Stmt.Pos(),
			Cond: cond,
			Then: &lang.BlockStmt{List: []lang.Stmt{setPC(tTo)}},
			Else: &lang.BlockStmt{List: []lang.Stmt{setPC(fTo)}},
		}}, nil
	case cfg.KindSwitch:
		swStmt := lang.Unlabel(n.Stmt).(*lang.SwitchStmt)
		// Evaluate the tag once into a scratch variable, then an
		// if/else chain of dispatches.
		body := []lang.Stmt{&lang.AssignStmt{
			P: n.Stmt.Pos(), Name: tagName, Value: swStmt.Tag,
		}}
		type dispatch struct {
			value  int64
			target int
		}
		var ds []dispatch
		defaultTo := -1
		for _, e := range n.Out {
			if e.Label == "default" {
				defaultTo = e.To
				continue
			}
			var v int64
			fmt.Sscanf(e.Label, "%d", &v)
			ds = append(ds, dispatch{value: v, target: e.To})
		}
		sort.Slice(ds, func(i, j int) bool { return ds[i].value < ds[j].value })
		if defaultTo < 0 {
			return nil, fmt.Errorf("restructure: switch node %v has no default edge", n)
		}
		// Build the chain inside-out.
		var chain lang.Stmt = &lang.BlockStmt{List: []lang.Stmt{setPC(defaultTo)}}
		for i := len(ds) - 1; i >= 0; i-- {
			chain = &lang.IfStmt{
				Cond: &lang.BinaryExpr{Op: "==",
					X: &lang.Ident{Name: tagName},
					Y: &lang.IntLit{Value: ds[i].value}},
				Then: &lang.BlockStmt{List: []lang.Stmt{setPC(ds[i].target)}},
				Else: chain,
			}
		}
		return append(body, chain), nil
	}
	return nil, fmt.Errorf("restructure: cannot restructure node %v", n)
}

// predicateCond extracts the condition of an if or while statement.
func predicateCond(s lang.Stmt) lang.Expr {
	switch s := lang.Unlabel(s).(type) {
	case *lang.IfStmt:
		return s.Cond
	case *lang.WhileStmt:
		return s.Cond
	}
	panic(fmt.Sprintf("restructure: predicate node with %T", s))
}

// freshName returns base if unused in the program, else base with a
// numeric suffix.
func freshName(p *lang.Program, base string) string {
	used := map[string]bool{}
	for _, v := range lang.VarNames(p) {
		used[v] = true
	}
	if !used[base] {
		return base
	}
	for i := 2; ; i++ {
		cand := fmt.Sprintf("%s%d", base, i)
		if !used[cand] {
			return cand
		}
	}
}
