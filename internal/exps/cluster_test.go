package exps

import "testing"

// TestClusterDeterministicAndSane pins E9's contract: the table is a
// pure function of (seeds, stmts), and each row's measures live in
// the ranges consistent hashing promises.
func TestClusterDeterministicAndSane(t *testing.T) {
	o := Options{Seeds: 60, Stmts: 20, Parallel: 4}
	rows, err := Cluster(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(ClusterNodeCounts) {
		t.Fatalf("%d rows, want %d", len(rows), len(ClusterNodeCounts))
	}
	for _, r := range rows {
		if r.Keys != o.Seeds {
			t.Fatalf("n=%d keys=%d, want %d", r.Nodes, r.Keys, o.Seeds)
		}
		if r.Balance < 1 {
			t.Fatalf("n=%d balance %v < 1 (max/mean cannot undercut the mean)", r.Nodes, r.Balance)
		}
		// Uniform ingress misses the owner (n-1)/n of the time, give or
		// take sampling noise.
		want := float64(r.Nodes-1) / float64(r.Nodes)
		if r.RemoteRate < want-0.05 || r.RemoteRate > want+0.05 {
			t.Fatalf("n=%d remote rate %v, want about %v", r.Nodes, r.RemoteRate, want)
		}
		if r.HotShare <= 0 || r.HotShare > 1 {
			t.Fatalf("n=%d hot share %v out of range", r.Nodes, r.HotShare)
		}
		// One node leaving must move roughly its own keys, never the
		// 2/n consistency bound.
		if r.MovedOnLeave > 2/float64(r.Nodes) {
			t.Fatalf("n=%d moved %v > 2/n on one leave", r.Nodes, r.MovedOnLeave)
		}
		if r.MovedOnLeave == 0 {
			t.Fatalf("n=%d no keys moved when a node left", r.Nodes)
		}
	}

	// Determinism across runs and parallelism.
	again, err := Cluster(Options{Seeds: 60, Stmts: 20, Parallel: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := range rows {
		if rows[i] != again[i] {
			t.Fatalf("row %d differs across parallelism: %+v vs %+v", i, rows[i], again[i])
		}
	}
}
