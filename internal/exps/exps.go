// Package exps implements the repository's quantitative experiments
// (EXPERIMENTS.md, tables E1–E4, E6 and E7) over generated program
// corpora. cmd/slicebench is a thin flag-and-printing wrapper around
// this package; keeping the engines importable lets bench_test.go
// measure them (serial versus parallel) and lets other tools reuse
// the corpus evaluation harness.
//
// Every experiment fans its corpus programs out over a worker pool
// (Options.Parallel) and reduces per-seed partial results in seed
// order, so parallel runs produce tables identical to serial ones —
// all aggregation is integer sums and histogram merges, which are
// order-independent, and the reduction order is fixed regardless.
package exps

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"sync"
	"time"

	"jumpslice/internal/baselines"
	"jumpslice/internal/cluster"
	"jumpslice/internal/core"
	"jumpslice/internal/dynslice"
	"jumpslice/internal/incremental"
	"jumpslice/internal/interp"
	"jumpslice/internal/lang"
	"jumpslice/internal/obs"
	"jumpslice/internal/progen"
	"jumpslice/internal/slicecache"
)

// Options configures an experiment run.
type Options struct {
	// Seeds is the number of generated programs per corpus.
	Seeds int
	// Stmts is the approximate statement count per program.
	Stmts int
	// Parallel is the worker pool size for fanning corpus programs
	// out; values below 1 (and 1) evaluate serially. DefaultParallel
	// picks the machine's GOMAXPROCS.
	Parallel int
	// Recorder, when non-nil, collects pipeline metrics across every
	// seed of the run: per-phase analysis spans, fixpoint traversal
	// counts, jump admissions, closure cache hits. All workers share
	// it — the instruments are atomic, and sums commute, so the
	// counter state is identical at any Parallel.
	Recorder obs.Recorder
	// Tracer, when non-nil, journals structured trace events (phase
	// spans, traversal passes, jump admissions with rule evidence,
	// cache activity) for every seed into its flight recorder. All
	// workers share it; the ring's writers are lock-free, so tracing
	// does not serialize the pool.
	Tracer *obs.Tracer
	// Context, when non-nil, cancels the run cooperatively: the
	// worker pool stops dispatching new seeds once it is canceled,
	// and each in-flight seed's analysis and slicing pipeline checks
	// it at phase and fixpoint boundaries (see internal/core), so a
	// long corpus sweep aborts promptly with an error wrapping
	// ctx.Err(). Nil means no cancellation.
	Context context.Context
	// Cache, when non-nil, memoizes completed analyses by content
	// hash of the generated program text. Experiments regenerate and
	// re-analyze the same (seed, stmts) programs — every table over
	// one corpus shares its seeds — so a cache shared across an -all
	// run analyzes each program once and every later experiment
	// rebinds the cached result to its own context and instruments.
	// Coalescing also collapses the duplicate analyses a parallel run
	// would otherwise do when two experiments race on one seed.
	Cache *slicecache.Cache
}

// ctx returns the run's context, defaulting to Background.
func (o Options) ctx() context.Context {
	if o.Context == nil {
		return context.Background()
	}
	return o.Context
}

// DefaultParallel is the worker pool size used when the caller does
// not choose one: the runtime's GOMAXPROCS.
func DefaultParallel() int { return runtime.GOMAXPROCS(0) }

// Report bundles every experiment's rows for machine consumption
// (cmd/slicebench -json). Experiments that were not run are nil.
type Report struct {
	Seeds    int            `json:"seeds"`
	Stmts    int            `json:"stmts"`
	Parallel int            `json:"parallel"`
	E1       []PrecisionRow `json:"precision,omitempty"`
	E2       []SoundnessRow `json:"soundness,omitempty"`
	E3       []TimingRow    `json:"timing,omitempty"`
	E4       []TraversalRow `json:"traversals,omitempty"`
	E6       []DynamicRow   `json:"dynamic,omitempty"`
	E7       []IncrRow      `json:"incremental,omitempty"`
	E8       []SDGRow       `json:"sdg,omitempty"`
	E9       []ClusterRow   `json:"cluster,omitempty"`
	// Metrics is the recorder snapshot taken after the run, when the
	// caller attached an Options.Recorder: phase timings, traversal
	// and jump counters, closure cache statistics.
	Metrics *obs.Snapshot `json:"metrics,omitempty"`
	// Trace summarizes the flight recorder after the run, when the
	// caller attached an Options.Tracer: how many events the run
	// published, how many the bounded ring had to evict, and how many
	// remained buffered.
	Trace *TraceStats `json:"trace,omitempty"`
	// Cache is the analysis cache's closing snapshot, when the run
	// was given an Options.Cache (cmd/slicebench -cache): how many
	// analyses were reused versus built, and the resident byte ledger.
	Cache *slicecache.Stats `json:"cache,omitempty"`
}

// TraceStats is the flight-recorder accounting of one traced run.
type TraceStats struct {
	Capacity int    `json:"capacity"`
	Written  uint64 `json:"events_written"`
	Dropped  uint64 `json:"events_dropped"`
	Buffered int    `json:"events_buffered"`
}

// TraceStatsOf summarizes a flight recorder (nil for a nil recorder).
func TraceStatsOf(fr *obs.FlightRecorder) *TraceStats {
	if fr == nil {
		return nil
	}
	return &TraceStats{
		Capacity: fr.Cap(),
		Written:  fr.Written(),
		Dropped:  fr.Dropped(),
		Buffered: len(fr.Events()),
	}
}

// PrecisionRow is one E1 table row: mean slice sizes for an
// algorithm on a corpus.
type PrecisionRow struct {
	Algorithm string  `json:"algorithm"`
	Corpus    string  `json:"corpus"`
	MeanStmts float64 `json:"mean_stmts"`
	MeanJumps float64 `json:"mean_jumps"`
	Cases     int     `json:"cases"`
}

// SoundnessRow is one E2 table row: how many slices reproduce the
// original program's criterion observations.
type SoundnessRow struct {
	Algorithm string `json:"algorithm"`
	Corpus    string `json:"corpus"`
	Sound     int    `json:"sound"`
	Cases     int    `json:"cases"`
}

// Rate returns the soundness rate in percent.
func (r SoundnessRow) Rate() float64 { return 100 * float64(r.Sound) / float64(r.Cases) }

// TraversalRow is one corpus of E4: the histogram of Figure 7
// traversal counts, as sorted (count, cases) pairs.
type TraversalRow struct {
	Corpus string         `json:"corpus"`
	Counts []TraversalBin `json:"counts"`
}

// TraversalBin is one histogram bin of a TraversalRow.
type TraversalBin struct {
	Traversals int `json:"traversals"`
	Cases      int `json:"cases"`
}

// DynamicRow is one E6 table row: dynamic versus static slice size
// for one corpus and input profile.
type DynamicRow struct {
	Corpus       string  `json:"corpus"`
	Profile      string  `json:"profile"`
	DynamicStmts float64 `json:"dynamic_stmts"`
	StaticStmts  float64 `json:"static_stmts"`
	Cases        int     `json:"cases"`
}

// IncrRow is one E7 table row: outcomes of a replayed edit script on
// one corpus. Edits partitions into the three reuse tiers of
// core.ReanalyzeProgram; the ratio compares the incremental
// re-analysis against a cold parse-free re-analysis of the same
// edited program.
type IncrRow struct {
	Corpus  string `json:"corpus"`
	Edits   int    `json:"edits"`
	Patched int    `json:"patched"`
	Partial int    `json:"partial"`
	Full    int    `json:"full"`
	// MeanRatio is the mean per-edit incremental/cold wall-clock
	// ratio; MeanIncrNs and MeanColdNs are the component means.
	MeanRatio  float64 `json:"mean_incr_cold_ratio"`
	MeanIncrNs float64 `json:"mean_incr_ns"`
	MeanColdNs float64 `json:"mean_cold_ns"`
}

// SDGRow is one E8 table row: two-pass interprocedural slicing over
// the multi-procedure corpus at one procedure count. Cold is the
// first slice of a program set (it pays for the summary-edge
// worklist); warm slices reuse the cached summaries.
type SDGRow struct {
	Procs       int     `json:"procs"`
	Sets        int     `json:"sets"`
	Cases       int     `json:"cases"`
	MeanLines   float64 `json:"mean_lines"`
	MeanJumps   float64 `json:"mean_jumps_added"`
	MeanSummary float64 `json:"mean_summary_edges"`
	MeanRounds  float64 `json:"mean_summary_rounds"`
	MeanColdNs  float64 `json:"mean_cold_ns"`
	MeanWarmNs  float64 `json:"mean_warm_ns"`
}

// ClusterRow is one E9 table row: consistent-hash routing simulated
// over the content-addressed corpus at one fleet size. The corpus
// keys are the real SHA-256 program addresses a sliced fleet routes
// on, and the request stream is zipf-skewed the way repeat slice
// traffic is; the numbers are deterministic per (seeds, stmts).
type ClusterRow struct {
	Nodes int `json:"nodes"`
	Keys  int `json:"keys"`
	// Balance is max/mean keys owned per node — 1.0 is a perfect
	// shard, the ring's vnode count bounds how close it gets.
	Balance float64 `json:"balance"`
	// RemoteRate is the fraction of uniformly-ingressed requests whose
	// owner is another node — each is one proxy (or peer-fill) hop.
	RemoteRate float64 `json:"remote_rate"`
	// HotShare is the busiest node's share of the zipf request stream
	// — how much of the hot head one shard absorbs.
	HotShare float64 `json:"hot_share"`
	// MovedOnLeave is the fraction of keys that change owner when one
	// node leaves; consistent hashing promises about 1/n.
	MovedOnLeave float64 `json:"moved_on_leave"`
}

// TimingRow is one E3 table row: mean wall-clock per slice for an
// algorithm across program sizes. Cells follow the Sizes order; a
// negative duration means "not applicable" (structured-only algorithm
// on an unstructured program).
type TimingRow struct {
	Algorithm string          `json:"algorithm"`
	Cells     []time.Duration `json:"cells_ns"`
}

// TimingSizes are the program sizes of the E3 sweep.
var TimingSizes = []int{20, 60, 180, 540}

// AlgoEntry names one slicing algorithm for the sweeps.
type AlgoEntry struct {
	Name       string
	Structured bool // requires a structured program
	Run        func(a *core.Analysis, c core.Criterion) (*core.Slice, error)
}

// Algorithms lists the algorithms each experiment sweeps.
func Algorithms() []AlgoEntry {
	return []AlgoEntry{
		{"conventional", false, func(a *core.Analysis, c core.Criterion) (*core.Slice, error) { return a.Conventional(c) }},
		{"agrawal (Fig 7)", false, func(a *core.Analysis, c core.Criterion) (*core.Slice, error) { return a.Agrawal(c) }},
		{"structured (Fig 12)", true, func(a *core.Analysis, c core.Criterion) (*core.Slice, error) { return a.AgrawalStructured(c) }},
		{"conservative (Fig 13)", true, func(a *core.Analysis, c core.Criterion) (*core.Slice, error) { return a.AgrawalConservative(c) }},
		{"weiser", false, baselines.Weiser},
		{"ball-horwitz", false, baselines.BallHorwitz},
		{"lyle", false, baselines.Lyle},
		{"gallagher", false, baselines.Gallagher},
		{"jiang-zhou-robson", false, baselines.JiangZhouRobson},
	}
}

// CorpusNames lists the generated corpora in table order.
func CorpusNames() []string { return []string{"structured", "unstructured"} }

// generator returns the program generator of a corpus.
func generator(corpus string, stmts int) func(int64) *lang.Program {
	switch corpus {
	case "structured":
		return func(s int64) *lang.Program { return progen.Structured(progen.Config{Seed: s, Stmts: stmts}) }
	case "unstructured":
		return func(s int64) *lang.Program { return progen.Unstructured(progen.Config{Seed: s, Stmts: stmts}) }
	}
	panic("exps: unknown corpus " + corpus)
}

// seedCase is one generated program with its slicing criteria (the
// last two write criteria, matching the historical tables).
type seedCase struct {
	prog  *lang.Program
	an    *core.Analysis
	crits []core.Criterion
}

// analyze runs the analysis pipeline on p, through the run's cache
// when one is configured: keyed by the program's printed text, built
// detached on a miss, and rebound to this call's context and
// instruments either way.
func (o Options) analyze(ctx context.Context, p *lang.Program) (*core.Analysis, error) {
	rec, tr := o.Recorder, o.Tracer
	if o.Cache == nil {
		return core.AnalyzeObservedContext(ctx, p, rec, tr)
	}
	cached, _, err := o.Cache.Get(ctx, lang.Format(p, lang.PrintOptions{}), func(bctx context.Context) (*core.Analysis, error) {
		built, err := core.AnalyzeObservedContext(bctx, p, rec, tr)
		if err != nil {
			return nil, err
		}
		return built.Rebind(nil, rec, nil), nil
	})
	if err != nil {
		return nil, err
	}
	return cached.Rebind(ctx, rec, tr), nil
}

// analyzeSeed builds the per-seed case every experiment starts from,
// recording the analysis phases on the run's recorder (nil for none).
// The context cancels the analysis cooperatively at phase boundaries.
func analyzeSeed(ctx context.Context, gen func(int64) *lang.Program, seed int64, o Options) (seedCase, error) {
	p := gen(seed)
	a, err := o.analyze(ctx, p)
	if err != nil {
		return seedCase{}, fmt.Errorf("seed %d: %w", seed, err)
	}
	wcs := progen.WriteCriteria(p)
	if len(wcs) > 2 {
		wcs = wcs[len(wcs)-2:]
	}
	crits := make([]core.Criterion, len(wcs))
	for i, wc := range wcs {
		crits[i] = core.Criterion{Var: wc.Var, Line: wc.Line}
	}
	return seedCase{prog: p, an: a, crits: crits}, nil
}

// runSeeds evaluates fn for seeds 0..n-1 over a pool of parallel
// workers and returns the results in seed order. With parallel <= 1
// it runs serially. The first error (by seed order, for determinism)
// aborts the run. A canceled ctx stops dispatching further seeds —
// in-flight seeds abort through their own cooperative checks — and
// the run reports the cancellation.
func runSeeds[T any](ctx context.Context, n, parallel int, fn func(seed int64) (T, error)) ([]T, error) {
	out := make([]T, n)
	if parallel <= 1 || n <= 1 {
		for s := 0; s < n; s++ {
			if err := ctx.Err(); err != nil {
				return nil, fmt.Errorf("exps: run canceled before seed %d: %w", s, err)
			}
			r, err := fn(int64(s))
			if err != nil {
				return nil, err
			}
			out[s] = r
		}
		return out, nil
	}
	if parallel > n {
		parallel = n
	}
	errs := make([]error, n)
	next := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < parallel; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for s := range next {
				out[s], errs[s] = fn(int64(s))
			}
		}()
	}
dispatch:
	for s := 0; s < n; s++ {
		select {
		case next <- s:
		case <-ctx.Done():
			break dispatch
		}
	}
	close(next)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("exps: run canceled: %w", err)
	}
	return out, nil
}

// Precision computes E1: mean statements and mean jump statements per
// slice, per algorithm and corpus.
func Precision(o Options) ([]PrecisionRow, error) {
	algos := Algorithms()
	ctx := o.ctx()
	type totals struct{ stmts, jumps, cases int }
	var rows []PrecisionRow
	for _, corpus := range CorpusNames() {
		gen := generator(corpus, o.Stmts)
		parts, err := runSeeds(ctx, o.Seeds, o.Parallel, func(seed int64) ([]totals, error) {
			sc, err := analyzeSeed(ctx, gen, seed, o)
			if err != nil {
				return nil, err
			}
			per := make([]totals, len(algos))
			for ai, ae := range algos {
				if ae.Structured && !sc.an.Structured() {
					continue
				}
				for _, c := range sc.crits {
					s, err := ae.Run(sc.an, c)
					if err != nil {
						if errors.Is(err, core.ErrUnstructured) {
							continue
						}
						return nil, err
					}
					per[ai].cases++
					for _, id := range s.StatementNodes() {
						per[ai].stmts++
						if sc.an.CFG.Nodes[id].Kind.IsJump() {
							per[ai].jumps++
						}
					}
				}
			}
			return per, nil
		})
		if err != nil {
			return nil, err
		}
		for ai, ae := range algos {
			var t totals
			for _, per := range parts {
				t.stmts += per[ai].stmts
				t.jumps += per[ai].jumps
				t.cases += per[ai].cases
			}
			if t.cases == 0 {
				continue
			}
			rows = append(rows, PrecisionRow{
				Algorithm: ae.Name,
				Corpus:    corpus,
				MeanStmts: float64(t.stmts) / float64(t.cases),
				MeanJumps: float64(t.jumps) / float64(t.cases),
				Cases:     t.cases,
			})
		}
	}
	return rows, nil
}

// SoundnessInputs are the shared input streams of the E2 check.
var SoundnessInputs = [][]int64{nil, {1, 2, 3}, {-5, 7, 0, 2, 9, -1}, {8, 8, -8, 8}, {0, 0, 0, 1, 1, 1}}

// equalInt64s reports whether two observation streams are identical.
// It replaces reflect.DeepEqual in the hot comparison loop; nil and
// empty are considered equal, matching observation semantics (no
// output is no output).
func equalInt64s(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i, v := range a {
		if v != b[i] {
			return false
		}
	}
	return true
}

// sound checks one slice against the original on the shared inputs.
func sound(orig *lang.Program, s *core.Slice) (bool, error) {
	sliced := s.Materialize()
	for _, in := range SoundnessInputs {
		want, err := interp.Observe(orig, in, s.Criterion.Var, s.Criterion.Line)
		if err != nil {
			return false, err
		}
		got, err := interp.Observe(sliced, in, s.Criterion.Var, s.Criterion.Line)
		if errors.Is(err, interp.ErrStepBudget) {
			return false, nil // diverging slice: definitely wrong
		}
		if err != nil {
			return false, err
		}
		if !equalInt64s(got, want) {
			return false, nil
		}
	}
	return true, nil
}

// Soundness computes E2: the fraction of criteria whose slice
// reproduces the original observations.
func Soundness(o Options) ([]SoundnessRow, error) {
	algos := Algorithms()
	ctx := o.ctx()
	type totals struct{ ok, cases int }
	var rows []SoundnessRow
	for _, corpus := range CorpusNames() {
		gen := generator(corpus, o.Stmts)
		parts, err := runSeeds(ctx, o.Seeds, o.Parallel, func(seed int64) ([]totals, error) {
			sc, err := analyzeSeed(ctx, gen, seed, o)
			if err != nil {
				return nil, err
			}
			per := make([]totals, len(algos))
			for ai, ae := range algos {
				if ae.Structured && !sc.an.Structured() {
					continue
				}
				for _, c := range sc.crits {
					s, err := ae.Run(sc.an, c)
					if err != nil {
						if errors.Is(err, core.ErrUnstructured) {
							continue
						}
						return nil, err
					}
					good, err := sound(sc.prog, s)
					if err != nil {
						return nil, err
					}
					per[ai].cases++
					if good {
						per[ai].ok++
					}
				}
			}
			return per, nil
		})
		if err != nil {
			return nil, err
		}
		for ai, ae := range algos {
			var t totals
			for _, per := range parts {
				t.ok += per[ai].ok
				t.cases += per[ai].cases
			}
			if t.cases == 0 {
				continue
			}
			rows = append(rows, SoundnessRow{Algorithm: ae.Name, Corpus: corpus, Sound: t.ok, Cases: t.cases})
		}
	}
	return rows, nil
}

// Traversals computes E4: the distribution of Figure 7 traversal
// counts per corpus.
func Traversals(o Options) ([]TraversalRow, error) {
	ctx := o.ctx()
	var rows []TraversalRow
	for _, corpus := range CorpusNames() {
		gen := generator(corpus, o.Stmts)
		parts, err := runSeeds(ctx, o.Seeds, o.Parallel, func(seed int64) (map[int]int, error) {
			sc, err := analyzeSeed(ctx, gen, seed, o)
			if err != nil {
				return nil, err
			}
			hist := map[int]int{}
			for _, c := range sc.crits {
				s, err := sc.an.Agrawal(c)
				if err != nil {
					return nil, err
				}
				hist[s.Traversals]++
			}
			return hist, nil
		})
		if err != nil {
			return nil, err
		}
		hist := map[int]int{}
		for _, h := range parts {
			for k, v := range h {
				hist[k] += v
			}
		}
		var keys []int
		for k := range hist {
			keys = append(keys, k)
		}
		sort.Ints(keys)
		row := TraversalRow{Corpus: corpus}
		for _, k := range keys {
			row.Counts = append(row.Counts, TraversalBin{Traversals: k, Cases: hist[k]})
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// DynamicProfiles are the E6 input profiles, in table order.
var DynamicProfiles = []struct {
	Name  string
	Input []int64
}{
	{"empty input", nil},
	{"short input", []int64{1, -2}},
	{"mixed input", []int64{3, -1, 4, 0, 5, -9, 2}},
}

// Dynamic computes E6: dynamic slice size as a fraction of the static
// (Figure 7) slice, per corpus and input profile.
func Dynamic(o Options) ([]DynamicRow, error) {
	ctx := o.ctx()
	var rows []DynamicRow
	for _, corpus := range CorpusNames() {
		gen := generator(corpus, o.Stmts)
		for _, prof := range DynamicProfiles {
			prof := prof
			type totals struct{ dyn, stat, cases int }
			parts, err := runSeeds(ctx, o.Seeds, o.Parallel, func(seed int64) (totals, error) {
				sc, err := analyzeSeed(ctx, gen, seed, o)
				if err != nil {
					return totals{}, err
				}
				var t totals
				for _, c := range sc.crits {
					static, err := sc.an.Agrawal(c)
					if err != nil {
						return totals{}, err
					}
					dyn, err := dynslice.Slice(sc.an, c, dynslice.Options{Input: prof.Input})
					if err != nil {
						return totals{}, err
					}
					t.dyn += len(dyn.StatementNodes())
					t.stat += len(static.StatementNodes())
					t.cases++
				}
				return t, nil
			})
			if err != nil {
				return nil, err
			}
			var t totals
			for _, p := range parts {
				t.dyn += p.dyn
				t.stat += p.stat
				t.cases += p.cases
			}
			rows = append(rows, DynamicRow{
				Corpus:       corpus,
				Profile:      prof.Name,
				DynamicStmts: float64(t.dyn) / float64(t.cases),
				StaticStmts:  float64(t.stat) / float64(t.cases),
				Cases:        t.cases,
			})
		}
	}
	return rows, nil
}

// Timing computes E3: mean wall-clock per slice (analysis excluded)
// per algorithm and program size, plus a row for the batch engine
// (SliceAll's marginal per-slice cost with a warm condensation). The
// (algorithm, size) cells are fanned out over the worker pool; cell
// identities are deterministic, wall-clock values naturally are not.
func Timing(o Options) ([]TimingRow, error) {
	algos := Algorithms()
	rows := make([]TimingRow, len(algos)+1)
	type cell struct{ row, col int }
	var cells []cell
	for ri := range algos {
		rows[ri] = TimingRow{Algorithm: algos[ri].Name, Cells: make([]time.Duration, len(TimingSizes))}
		for ci := range TimingSizes {
			cells = append(cells, cell{ri, ci})
		}
	}
	batch := len(algos)
	rows[batch] = TimingRow{Algorithm: "agrawal (batch)", Cells: make([]time.Duration, len(TimingSizes))}
	for ci := range TimingSizes {
		cells = append(cells, cell{batch, ci})
	}
	const reps = 50
	ctx := o.ctx()
	_, err := runSeeds(ctx, len(cells), o.Parallel, func(i int64) (struct{}, error) {
		c := cells[i]
		size := TimingSizes[c.col]
		p := progen.Structured(progen.Config{Seed: 1, Stmts: size})
		a, err := o.analyze(ctx, p)
		if err != nil {
			return struct{}{}, err
		}
		wcs := progen.WriteCriteria(p)
		crit := core.Criterion{Var: wcs[len(wcs)-1].Var, Line: wcs[len(wcs)-1].Line}
		if c.row == batch {
			crits := []core.Criterion{crit}
			if _, err := a.SliceAll(crits); err != nil { // warm the condensation
				return struct{}{}, err
			}
			start := time.Now()
			for r := 0; r < reps; r++ {
				if _, err := a.SliceAll(crits); err != nil {
					return struct{}{}, err
				}
			}
			rows[c.row].Cells[c.col] = time.Since(start) / reps
			return struct{}{}, nil
		}
		ae := algos[c.row]
		if ae.Structured && !a.Structured() {
			rows[c.row].Cells[c.col] = -1
			return struct{}{}, nil
		}
		start := time.Now()
		for r := 0; r < reps; r++ {
			if _, err := ae.Run(a, crit); err != nil {
				return struct{}{}, err
			}
		}
		rows[c.row].Cells[c.col] = time.Since(start) / reps
		return struct{}{}, nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// SDGProcCounts are the procedure counts of the E8 sweep.
var SDGProcCounts = []int{2, 4, 8}

// SDG computes E8: two-pass HRB slicing over the multi-procedure
// corpus, sweeping the procedure count. Each program set is sliced on
// its main write criteria; the first slice is the cold measurement
// (it runs the summary-edge worklist), later criteria reuse the
// cached summaries and measure the warm path.
func SDG(o Options) ([]SDGRow, error) {
	ctx := o.ctx()
	var rows []SDGRow
	for _, np := range SDGProcCounts {
		np := np
		type totals struct {
			sets, cases, colds, warms     int
			lines, jumps, summary, rounds float64
			coldNs, warmNs                float64
		}
		parts, err := runSeeds(ctx, o.Seeds, o.Parallel, func(seed int64) (totals, error) {
			p := progen.MultiProc(progen.Config{Seed: seed, Stmts: o.Stmts, Procs: np})
			ps, err := core.AnalyzeProgramSetObservedContext(ctx, p, o.Recorder, o.Tracer)
			if err != nil {
				return totals{}, fmt.Errorf("seed %d: %w", seed, err)
			}
			crits := progen.MainWriteCriteria(p)
			var t totals
			for i, wc := range crits {
				c := core.Criterion{Var: wc.Var, Line: wc.Line}
				start := time.Now()
				s, err := ps.SliceInterproc(c)
				d := time.Since(start)
				if err != nil {
					return totals{}, fmt.Errorf("seed %d %v: %w", seed, c, err)
				}
				if i == 0 {
					t.coldNs += float64(d)
					t.colds++
				} else {
					t.warmNs += float64(d)
					t.warms++
				}
				t.lines += float64(len(s.Lines()))
				t.jumps += float64(s.JumpsAdded)
				t.cases++
			}
			st := ps.SDG.Stats()
			t.summary = float64(st.SummaryEdges)
			t.rounds = float64(st.SummaryRounds)
			t.sets = 1
			return t, nil
		})
		if err != nil {
			return nil, err
		}
		var t totals
		for _, p := range parts {
			t.sets += p.sets
			t.cases += p.cases
			t.colds += p.colds
			t.warms += p.warms
			t.lines += p.lines
			t.jumps += p.jumps
			t.summary += p.summary
			t.rounds += p.rounds
			t.coldNs += p.coldNs
			t.warmNs += p.warmNs
		}
		if t.cases == 0 {
			continue
		}
		row := SDGRow{
			Procs:       np,
			Sets:        t.sets,
			Cases:       t.cases,
			MeanLines:   t.lines / float64(t.cases),
			MeanJumps:   t.jumps / float64(t.cases),
			MeanSummary: t.summary / float64(t.sets),
			MeanRounds:  t.rounds / float64(t.sets),
		}
		if t.colds > 0 {
			row.MeanColdNs = t.coldNs / float64(t.colds)
		}
		if t.warms > 0 {
			row.MeanWarmNs = t.warmNs / float64(t.warms)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// incrEdits builds the deterministic per-seed edit script of E7: for
// up to three spliceable assignment lines (first, middle, last — the
// positions an editor loop actually touches), three one-line edits
// each designed to land in a different reuse tier. Whether a tier is
// actually reached is measured, not assumed — that is the point of
// the experiment.
func incrEdits(p *lang.Program) []struct {
	Line int
	Text string
} {
	var cands []*lang.AssignStmt
	for _, s := range lang.Statements(p) {
		as, ok := s.(*lang.AssignStmt)
		if !ok {
			continue
		}
		if _, ok := incremental.SpliceLine(p, as.Pos().Line, as.Name+" = 0;"); ok {
			cands = append(cands, as)
		}
	}
	if len(cands) == 0 {
		return nil
	}
	picks := []*lang.AssignStmt{cands[0]}
	if len(cands) > 2 {
		picks = append(picks, cands[len(cands)/2])
	}
	if len(cands) > 1 {
		picks = append(picks, cands[len(cands)-1])
	}
	var edits []struct {
		Line int
		Text string
	}
	for _, as := range picks {
		line := as.Pos().Line
		edits = append(edits,
			// Same defined variable, new expression: shape and defs
			// survive, so the patched tier should absorb it.
			struct {
				Line int
				Text string
			}{line, fmt.Sprintf("%s = %s + 1;", as.Name, as.Name)},
			// New defined variable: shape survives but a definition
			// moved, so dataflow must re-run (partial tier).
			struct {
				Line int
				Text string
			}{line, fmt.Sprintf("e7_%s = %s;", as.Name, as.Name)},
			// Statement kind change: the flowgraph rebind refuses and
			// the engine falls back to a full cold run.
			struct {
				Line int
				Text string
			}{line, fmt.Sprintf("write(%s);", as.Name)},
		)
	}
	return edits
}

// Incr computes E7: replay a deterministic edit script per seed
// through the incremental re-analysis engine and report how edits
// distribute over the reuse tiers, plus the wall-clock ratio of the
// incremental path against a cold re-analysis of the same edited
// program. The base analysis is warmed with one SliceAll — the state
// a sliced session holds — so condensation patching is exercised.
func Incr(o Options) ([]IncrRow, error) {
	ctx := o.ctx()
	type totals struct {
		edits, patched, partial, full int
		ratioSum, incrNs, coldNs      float64
	}
	var rows []IncrRow
	for _, corpus := range CorpusNames() {
		gen := generator(corpus, o.Stmts)
		parts, err := runSeeds(ctx, o.Seeds, o.Parallel, func(seed int64) (totals, error) {
			p := gen(seed)
			// The previous analysis is built cold and privately: the
			// run cache would hand out an analysis shared with other
			// experiments, and warming its condensation here would
			// leak E7's access pattern into their measurements.
			prev, err := core.AnalyzeObservedContext(ctx, p, o.Recorder, o.Tracer)
			if err != nil {
				return totals{}, fmt.Errorf("seed %d: %w", seed, err)
			}
			wcs := progen.WriteCriteria(p)
			if len(wcs) > 0 {
				c := core.Criterion{Var: wcs[len(wcs)-1].Var, Line: wcs[len(wcs)-1].Line}
				if _, err := prev.SliceAll([]core.Criterion{c}); err != nil {
					return totals{}, fmt.Errorf("seed %d: warm slice: %w", seed, err)
				}
			}
			var t totals
			for _, e := range incrEdits(p) {
				p2, ok := incremental.SpliceLine(p, e.Line, e.Text)
				if !ok {
					continue
				}
				start := time.Now()
				_, stats, err := core.ReanalyzeProgram(ctx, prev, p2, o.Recorder, o.Tracer)
				incr := time.Since(start)
				if err != nil {
					return totals{}, fmt.Errorf("seed %d line %d: %w", seed, e.Line, err)
				}
				start = time.Now()
				if _, err := core.AnalyzeObservedContext(ctx, p2, o.Recorder, o.Tracer); err != nil {
					return totals{}, fmt.Errorf("seed %d line %d: cold: %w", seed, e.Line, err)
				}
				cold := time.Since(start)
				t.edits++
				switch stats.Outcome {
				case "patched":
					t.patched++
				case "partial":
					t.partial++
				default:
					t.full++
				}
				t.incrNs += float64(incr)
				t.coldNs += float64(cold)
				if cold > 0 {
					t.ratioSum += float64(incr) / float64(cold)
				}
			}
			return t, nil
		})
		if err != nil {
			return nil, err
		}
		var t totals
		for _, p := range parts {
			t.edits += p.edits
			t.patched += p.patched
			t.partial += p.partial
			t.full += p.full
			t.ratioSum += p.ratioSum
			t.incrNs += p.incrNs
			t.coldNs += p.coldNs
		}
		if t.edits == 0 {
			continue
		}
		n := float64(t.edits)
		rows = append(rows, IncrRow{
			Corpus:     corpus,
			Edits:      t.edits,
			Patched:    t.patched,
			Partial:    t.partial,
			Full:       t.full,
			MeanRatio:  t.ratioSum / n,
			MeanIncrNs: t.incrNs / n,
			MeanColdNs: t.coldNs / n,
		})
	}
	return rows, nil
}

// ClusterNodeCounts are the fleet sizes of the E9 sweep.
var ClusterNodeCounts = []int{2, 3, 5, 8}

// clusterRequests is the length of the simulated zipf request stream
// per fleet size.
const clusterRequests = 20000

// Cluster computes E9: consistent-hash routing over the structured
// corpus's real content addresses. No daemons run — the experiment
// exercises internal/cluster's ring exactly as a sliced fleet would
// (same SHA-256 keys, same vnode count) and measures the shard
// balance, the remote-hop rate under uniform ingress, the hot shard's
// share of a zipf-skewed stream, and the churn of one node leaving.
// Everything is seeded, so the table is identical on every machine.
func Cluster(o Options) ([]ClusterRow, error) {
	ctx := o.ctx()
	// The corpus keys: one content address per generated program, the
	// very bytes slicecache.KeyOf routes on in production.
	keys := make([][]byte, o.Seeds)
	parts, err := runSeeds(ctx, o.Seeds, o.Parallel, func(seed int64) ([]byte, error) {
		p := progen.Structured(progen.Config{Seed: seed, Stmts: o.Stmts})
		k := slicecache.KeyOf(lang.Format(p, lang.PrintOptions{}))
		return k[:], nil
	})
	if err != nil {
		return nil, err
	}
	copy(keys, parts)

	var rows []ClusterRow
	for _, n := range ClusterNodeCounts {
		nodes := make([]string, n)
		for i := range nodes {
			nodes[i] = fmt.Sprintf("node-%02d:7070", i)
		}
		ring := cluster.NewRing(nodes, cluster.DefaultVnodes)

		owners := make([]string, len(keys))
		perNode := map[string]int{}
		for i, k := range keys {
			owners[i] = ring.Owner(k)
			perNode[owners[i]]++
		}
		maxKeys := 0
		for _, c := range perNode {
			if c > maxKeys {
				maxKeys = c
			}
		}

		// The zipf stream: rank 0 is the hottest program, ingress is a
		// uniformly random node (a load balancer without affinity).
		rng := rand.New(rand.NewSource(int64(n)))
		zipf := rand.NewZipf(rng, 1.2, 1, uint64(len(keys)-1))
		remote := 0
		served := map[string]int{}
		for i := 0; i < clusterRequests; i++ {
			owner := owners[int(zipf.Uint64())]
			served[owner]++
			if nodes[rng.Intn(n)] != owner {
				remote++
			}
		}
		hot := 0
		for _, c := range served {
			if c > hot {
				hot = c
			}
		}

		// Churn: node 0 leaves, how many keys move?
		smaller := cluster.NewRing(nodes[1:], cluster.DefaultVnodes)
		moved := 0
		for i, k := range keys {
			if smaller.Owner(k) != owners[i] {
				moved++
			}
		}

		rows = append(rows, ClusterRow{
			Nodes:        n,
			Keys:         len(keys),
			Balance:      float64(maxKeys) * float64(n) / float64(len(keys)),
			RemoteRate:   float64(remote) / float64(clusterRequests),
			HotShare:     float64(hot) / float64(clusterRequests),
			MovedOnLeave: float64(moved) / float64(len(keys)),
		})
	}
	return rows, nil
}
