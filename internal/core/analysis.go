// Package core implements the slicing algorithms of Agrawal's "On
// Slicing Programs with Jump Statements" (PLDI 1994):
//
//   - Conventional — program-dependence-graph reachability with the
//     paper's conditional-jump adaptation (Section 2 and Section 3,
//     second paragraph). Jump-unaware: never includes an unconditional
//     jump, and therefore wrong on programs with jumps.
//   - Agrawal — the general algorithm of Figure 7: repeated preorder
//     traversals of the postdominator tree add every jump whose
//     nearest postdominator in the slice differs from its nearest
//     lexical successor in the slice, closing the slice under the
//     dependences of each added jump.
//   - AgrawalStructured — the Figure 12 algorithm for structured
//     programs: a single traversal, candidates restricted to jumps
//     directly control dependent on a predicate already in the slice,
//     no dependence closure needed.
//   - AgrawalConservative — the Figure 13 algorithm: include every
//     jump directly control dependent on a predicate in the slice.
//     Needs neither the postdominator tree traversal nor the lexical
//     successor tree, at the cost of possibly larger slices.
//
// All four share an Analysis, which packages the flowgraph, the
// postdominator tree, the control/data/program dependence graphs and
// the lexical successor tree of one program. The paper's key selling
// point — the flowgraph and the PDG stay untouched; only the separate
// lexical successor tree is added — is visible in the types: every
// algorithm reads the same Analysis.
package core

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"jumpslice/internal/bits"
	"jumpslice/internal/cdg"
	"jumpslice/internal/cfg"
	"jumpslice/internal/dataflow"
	"jumpslice/internal/dom"
	"jumpslice/internal/lang"
	"jumpslice/internal/lst"
	"jumpslice/internal/obs"
	"jumpslice/internal/pdg"
)

// Criterion is a slicing criterion (variable, line): "the value of Var
// at Line", e.g. positives on line 12.
type Criterion struct {
	Var  string
	Line int
}

// String renders the criterion as "<var>@<line>".
func (c Criterion) String() string { return fmt.Sprintf("%s@%d", c.Var, c.Line) }

// Analysis bundles every derived structure of one program. Build it
// once with Analyze, then compute any number of slices from it.
type Analysis struct {
	Prog *lang.Program
	CFG  *cfg.Graph
	// PDT is the postdominator tree, rooted at Exit.
	PDT *dom.Tree
	// CDG is the control dependence graph (Ferrante–Ottenstein–Warren
	// over the plain flowgraph).
	CDG *cdg.Graph
	// RD holds reaching definitions; DataDeps derive from it.
	RD *dataflow.ReachingDefs
	// PDG merges control and data dependence.
	PDG *pdg.Graph
	// LST is the lexical successor tree — the one extra structure the
	// paper's algorithm needs.
	LST *lst.Tree

	// live[n] reports whether node n is reachable from Entry. Dead
	// statements never execute, so the jump-detection phases consider
	// only live jumps; without this filter the Figure 7 test happily
	// adds jumps sitting in unreachable code (e.g. a second break
	// right after a break), which no other algorithm ever selects and
	// which cannot affect any criterion.
	live []bool

	// enclosingSwitch maps each node ID to the node ID of the switch
	// tag immediately enclosing its statement, or -1. It backs the
	// switch-enclosure invariant (see normalizeSlice): a C case body
	// statement can postdominate its switch's dispatch (fall-through
	// into default), in which case it is not control dependent on the
	// switch — yet a slice containing it without the switch is not a
	// projection, and the paper's lexical-successor test implicitly
	// assumes projections (footnote 2: deleting a compound deletes
	// its body). if and while bodies cannot postdominate their
	// predicates in structured code, so only switches need this.
	enclosingSwitch []int

	// Precomputed worklists for the jump-detection and normalization
	// phases. The Figure 7 traversal only ever acts on live jump
	// nodes, so the preorders are filtered to those once here instead
	// of re-scanning (and re-filtering) every tree node per traversal;
	// likewise normalizeSlice only acts on conditional-jump predicates
	// and on switch-enclosed statements, so those are listed once
	// instead of scanning all CFG nodes per fixpoint pass. Relative
	// order is preserved, so traversal results are unchanged.

	// jumpsPDT lists the live jump node IDs in postdominator-tree
	// preorder (Figure 7's traversal order); jumpsLST is its lexical-
	// successor-tree twin (the paper's alternative driver).
	jumpsPDT []int
	jumpsLST []int
	// condJumps lists each conditional-jump pair: an if-with-no-else
	// predicate and the single jump statement forming its body, in
	// ascending predicate node order.
	condJumps []condJumpPair
	// switchNodes lists the node IDs with enclosingSwitch >= 0,
	// ascending.
	switchNodes []int
	// gotoNodes lists the goto statement nodes, in node order, for
	// label retargeting.
	gotoNodes []*cfg.Node

	// batch holds the lazily-built condensation of the invariant-
	// augmented dependence relation backing SliceAll (see batchEngine).
	// It sits behind a pointer so the condensation — and its sync.Once
	// — is shared by every Rebind view of this Analysis, and so the
	// Analysis struct itself stays free of locks and legal to copy.
	batch *batchState

	// rec is the observability recorder every slicing call reports to
	// (obs.Nop unless AnalyzeRecorded attached a collecting one), and
	// m holds the pre-resolved instruments so hot paths pay a single
	// nil-check per event when recording is disabled.
	rec obs.Recorder
	m   coreMetrics

	// tr is the request-scoped tracer (nil unless AnalyzeObserved
	// attached one). Every trace emission below is nil-checked inside
	// the tracer, so the untraced hot path pays the same single-branch
	// cost as the unrecorded one.
	tr *obs.Tracer

	// ctx is the request context the Analysis was built under (nil
	// unless AnalyzeObservedContext attached a cancelable one), and
	// cancelf is the pre-bound cancellation callback handed to the
	// dependence-closure engines (nil when ctx is nil, which disables
	// their checks entirely). See cancel.go.
	ctx     context.Context
	cancelf func() error
}

// coreMetrics is the Analysis's pre-resolved instrument set. All
// fields are nil under obs.Nop; every obs instrument method is
// nil-safe.
type coreMetrics struct {
	// slices counts slicing calls (any algorithm in this package).
	slices *obs.Counter
	// traversals counts fixpoint passes of the jump-detection loops
	// (Figures 7, 12 and 13), including each final unproductive one.
	traversals *obs.Counter
	// jumpsExamined counts candidate jumps tested by the nearest-
	// postdominator/lexical-successor rule; jumpsAdmitted counts the
	// tests that admitted the jump into the slice.
	jumpsExamined *obs.Counter
	jumpsAdmitted *obs.Counter
	// sliceNodes is the distribution of final slice sizes (node
	// count, Entry included) — the closure-size visibility the batch
	// engine's memoization is judged by.
	sliceNodes *obs.Histogram
	// cancellations counts cooperative cancellations honoured: each
	// time a canceled context aborted an analysis or slicing call.
	cancellations *obs.Counter
}

// resolve pre-resolves the Analysis's instruments from its recorder.
func (m *coreMetrics) resolve(rec obs.Recorder) {
	m.slices = rec.Counter("core.slices")
	m.traversals = rec.Counter("core.fixpoint_traversals")
	m.jumpsExamined = rec.Counter("core.jumps_examined")
	m.jumpsAdmitted = rec.Counter("core.jumps_admitted")
	m.sliceNodes = rec.Histogram("core.slice_nodes", obs.UnitCount)
	m.cancellations = rec.Counter("core.cancellations")
}

// condJumpPair records a conditional jump statement: the predicate
// node of "if (e) goto L" and its jump node.
type condJumpPair struct {
	pred, jump int
}

// batchState is the shared lazily-built batch-engine state of one
// Analysis and all its Rebind views. The condensation sits behind an
// atomic pointer for two reasons: Reanalyze pre-seeds it with a
// patched condensation before the Analysis is shared (the once then
// observes the seed and skips its build), and Reanalyze peeks at a
// *previous* Analysis's condensation while other views of it may be
// slicing concurrently.
type batchState struct {
	once sync.Once
	cond atomic.Pointer[pdg.Condensation]
}

// Analyze parses nothing: it takes an already-parsed program and
// derives the flowgraph, postdominator tree, dependence graphs, and
// lexical successor tree. Equivalent to AnalyzeRecorded with the
// no-op recorder.
func Analyze(prog *lang.Program) (*Analysis, error) {
	return AnalyzeRecorded(prog, obs.Nop)
}

// AnalyzeRecorded is Analyze with an observability recorder attached:
// each construction phase is timed under a "phase.analyze.*" span
// (cfg → postdominators → cdg → dataflow → pdg → lst → worklists;
// the batch condensation, built lazily, reports under
// "phase.analyze.condense"), and every slicing call on the returned
// Analysis reports its fixpoint traversals, jump examinations and
// slice sizes to the same recorder. A nil recorder means obs.Nop.
func AnalyzeRecorded(prog *lang.Program, rec obs.Recorder) (*Analysis, error) {
	return AnalyzeObserved(prog, rec, nil)
}

// AnalyzeObserved is AnalyzeRecorded with a request-scoped tracer
// attached as well: every phase span also lands in the trace as an
// event, and each slicing call on the returned Analysis emits its
// traversal passes, jump admissions (with the nearest-postdominator/
// lexical-successor evidence of the Figure 7 rule), closure-cache
// activity and finished slices to the same tracer. A nil tracer means
// no tracing — the metrics-only behaviour of AnalyzeRecorded.
func AnalyzeObserved(prog *lang.Program, rec obs.Recorder, tr *obs.Tracer) (*Analysis, error) {
	return AnalyzeObservedContext(context.Background(), prog, rec, tr)
}

// AnalyzeObservedContext is AnalyzeObserved bound to a request
// context: the construction phases check ctx at every phase boundary,
// and every slicing call on the returned Analysis — the Figure
// 7/12/13 fixpoint loops, the dependence-closure engines, SliceAll —
// keeps checking it cooperatively (see cancel.go for the cadences).
// When ctx is canceled or its deadline expires, the in-flight call
// journals a cancellation trace event, counts it under
// core.cancellations, and returns an error wrapping ctx.Err(). A
// context that can never be canceled (context.Background) disables
// the checks.
func AnalyzeObservedContext(ctx context.Context, prog *lang.Program, rec obs.Recorder, tr *obs.Tracer) (*Analysis, error) {
	if len(prog.Procs) > 0 {
		return nil, fmt.Errorf("core: program declares procedures; use AnalyzeProgramSet for interprocedural analysis")
	}
	rec = obs.OrNop(rec)
	// phase times one construction phase on both sinks: the metrics
	// histogram and, when tracing, the event journal.
	phase := func(name string) func() {
		sp := rec.StartSpan(name)
		ts := tr.StartSpan(name)
		return func() { ts.End(); sp.End() }
	}
	endTotal := phase("phase.analyze")
	end := phase("phase.analyze.cfg")
	g, err := cfg.Build(prog)
	end()
	if err != nil {
		return nil, err
	}
	a := &Analysis{
		Prog:  prog,
		CFG:   g,
		batch: &batchState{},
		rec:   rec,
		tr:    tr,
	}
	a.m.resolve(rec)
	a.bindContext(ctx)
	if err := a.checkCancel("analyze"); err != nil {
		return nil, err
	}
	end = phase("phase.analyze.postdominators")
	a.PDT = dom.PostDominators(g, g.Exit.ID)
	end()
	if err := a.checkCancel("analyze"); err != nil {
		return nil, err
	}
	end = phase("phase.analyze.cdg")
	a.CDG = cdg.Build(g, a.PDT)
	end()
	if err := a.checkCancel("analyze"); err != nil {
		return nil, err
	}
	end = phase("phase.analyze.dataflow")
	a.RD = dataflow.Reach(g)
	end()
	if err := a.checkCancel("analyze"); err != nil {
		return nil, err
	}
	end = phase("phase.analyze.pdg")
	a.PDG = pdg.Build(g, a.CDG, a.RD)
	end()
	if err := a.checkCancel("analyze"); err != nil {
		return nil, err
	}
	end = phase("phase.analyze.lst")
	a.LST = lst.Build(g)
	end()
	if err := a.checkCancel("analyze"); err != nil {
		return nil, err
	}
	end = phase("phase.analyze.worklists")
	a.live = make([]bool, len(g.Nodes))
	for id := range g.Reachable() {
		a.live[id] = true
	}
	a.enclosingSwitch = make([]int, len(g.Nodes))
	for i := range a.enclosingSwitch {
		a.enclosingSwitch[i] = -1
	}
	var record func(s lang.Stmt, sw int)
	record = func(s lang.Stmt, sw int) {
		switch s := s.(type) {
		case nil:
		case *lang.LabeledStmt:
			record(s.Stmt, sw)
		case *lang.BlockStmt:
			for _, st := range s.List {
				record(st, sw)
			}
		case *lang.IfStmt:
			a.enclosingSwitch[g.NodeFor(s).ID] = sw
			record(s.Then, sw)
			record(s.Else, sw)
		case *lang.WhileStmt:
			a.enclosingSwitch[g.NodeFor(s).ID] = sw
			record(s.Body, sw)
		case *lang.SwitchStmt:
			n := g.NodeFor(s)
			a.enclosingSwitch[n.ID] = sw
			for _, cc := range s.Cases {
				for _, st := range cc.Body {
					record(st, n.ID)
				}
			}
		default:
			if n := g.NodeFor(s); n != nil {
				a.enclosingSwitch[n.ID] = sw
			}
		}
	}
	for _, s := range prog.Body {
		record(s, -1)
	}
	a.jumpsPDT = a.filterLiveJumps(a.PDT.Preorder())
	a.jumpsLST = a.filterLiveJumps(a.LST.Preorder())
	for _, n := range g.Nodes {
		if n.Kind == cfg.KindPredicate {
			if j := a.conditionalJumpOf(n); j != nil {
				a.condJumps = append(a.condJumps, condJumpPair{n.ID, j.ID})
			}
		}
		if n.Kind == cfg.KindGoto {
			a.gotoNodes = append(a.gotoNodes, n)
		}
	}
	for id, sw := range a.enclosingSwitch {
		if sw >= 0 {
			a.switchNodes = append(a.switchNodes, id)
		}
	}
	end()
	endTotal()
	return a, nil
}

// Recorder returns the observability recorder attached at analysis
// time (obs.Nop when none was).
func (a *Analysis) Recorder() obs.Recorder { return a.rec }

// Tracer returns the tracer attached at analysis time (nil when none
// was; the nil tracer is a valid no-op).
func (a *Analysis) Tracer() *obs.Tracer { return a.tr }

// filterLiveJumps projects a tree preorder onto the live jump nodes,
// preserving order — the only nodes the Figure 7 traversals act on.
func (a *Analysis) filterLiveJumps(order []int) []int {
	var out []int
	for _, v := range order {
		if a.CFG.Nodes[v].Kind.IsJump() && a.live[v] {
			out = append(out, v)
		}
	}
	return out
}

// MustAnalyze is Analyze but panics on error, for known-good corpus
// programs.
func MustAnalyze(prog *lang.Program) *Analysis {
	a, err := Analyze(prog)
	if err != nil {
		panic("core.MustAnalyze: " + err.Error())
	}
	return a
}

// Structured reports whether the program is structured in the paper's
// Section 4 sense: every jump statement's target is one of its lexical
// successors. break, continue and return always satisfy this; gotos
// satisfy it exactly when they transfer control forward to a statement
// their own control would eventually fall through to.
func (a *Analysis) Structured() bool {
	for _, j := range a.CFG.Jumps() {
		if j.Target == nil {
			continue // unresolved; cannot happen after a successful Build
		}
		if j.Target.ID == a.CFG.Exit.ID {
			continue // returns target Exit, the LST root: always a successor
		}
		if !a.LST.IsSuccessor(j.Target.ID, j.ID) {
			return false
		}
	}
	return true
}

// Slice is the result of a slicing algorithm.
type Slice struct {
	Analysis  *Analysis
	Criterion Criterion
	// Algorithm names the producing algorithm ("conventional",
	// "agrawal", "agrawal-structured", "agrawal-conservative", or a
	// baseline's name).
	Algorithm string
	// Nodes is the set of flowgraph node IDs in the slice (Entry may
	// be present from control dependence closure; Exit never is).
	Nodes *bits.Set
	// Traversals is the number of postdominator tree preorder
	// traversals performed, counting the final unproductive one
	// (Figure 7 only; 1 for Figure 12, 0 otherwise).
	Traversals int
	// JumpsAdded lists the node IDs of jump statements the jump-aware
	// phase added beyond the conventional slice, in addition order.
	JumpsAdded []int
	// JumpRules records, parallel to JumpsAdded, the evidence the
	// nearest-postdominator/lexical-successor rule saw at the moment
	// each jump was admitted (Figures 7 and 12; empty for algorithms
	// that admit jumps without the rule, e.g. Figure 13). Captured at
	// admission time because the final slice can shift both trees'
	// nearest-in-slice answers — the paper's Figure 3 rejection of
	// node 11 happens exactly because an earlier admission moved them.
	JumpRules []JumpRule
	// Relabeled maps goto labels whose labeled statement is not in the
	// slice to the node ID the label is re-attached to (the labeled
	// statement's nearest postdominator in the slice; Exit means "end
	// of program").
	Relabeled map[string]int
}

// JumpRule is the admission evidence of one jump added by the paper's
// rule: the jump's nearest postdominator in the slice and nearest
// lexical successor in the slice differed when it was examined. Node
// IDs; either may be the Exit node ("end of program").
type JumpRule struct {
	NearestPD int
	NearestLS int
}

// Has reports whether the flowgraph node with the given ID is in the
// slice.
func (s *Slice) Has(id int) bool { return s.Nodes.Has(id) }

// Lines returns the sorted source lines of the slice's statements
// (Entry and Exit excluded). This is the representation the paper's
// figures use.
func (s *Slice) Lines() []int {
	seen := map[int]bool{}
	for id := s.Nodes.NextSet(0); id >= 0; id = s.Nodes.NextSet(id + 1) {
		n := s.Analysis.CFG.Nodes[id]
		if n.Line > 0 {
			seen[n.Line] = true
		}
	}
	lines := make([]int, 0, len(seen))
	for l := range seen {
		lines = append(lines, l)
	}
	sort.Ints(lines)
	return lines
}

// StatementNodes returns the slice's node IDs excluding Entry/Exit, in
// ascending order.
func (s *Slice) StatementNodes() []int {
	var out []int
	for id := s.Nodes.NextSet(0); id >= 0; id = s.Nodes.NextSet(id + 1) {
		n := s.Analysis.CFG.Nodes[id]
		if n.Kind != cfg.KindEntry && n.Kind != cfg.KindExit {
			out = append(out, id)
		}
	}
	return out
}

// LiveStatementNodes returns the slice's node IDs excluding
// Entry/Exit and excluding nodes in dead (entry-unreachable) code.
// Dead statements never execute, so two slices with equal live parts
// are behaviourally identical; the Agrawal/Ball–Horwitz equivalence
// is stated on live parts because the augmented flowgraph gives dead
// code different connectivity than the plain one.
func (s *Slice) LiveStatementNodes() []int {
	var out []int
	for id := s.Nodes.NextSet(0); id >= 0; id = s.Nodes.NextSet(id + 1) {
		n := s.Analysis.CFG.Nodes[id]
		if n.Kind != cfg.KindEntry && n.Kind != cfg.KindExit && s.Analysis.live[id] {
			out = append(out, id)
		}
	}
	return out
}

// RelabeledLines translates Relabeled to source lines: label → line of
// the statement the label is re-attached to, with 0 meaning end of
// program.
func (s *Slice) RelabeledLines() map[string]int {
	out := map[string]int{}
	for l, id := range s.Relabeled {
		out[l] = s.Analysis.CFG.Nodes[id].Line
	}
	return out
}

// CriterionNodes resolves a criterion to its PDG seed node IDs; it is
// the entry point baseline algorithms share with the in-package
// slicers.
func (a *Analysis) CriterionNodes(c Criterion) ([]int, error) {
	return a.resolveCriterion(c)
}

// resolveCriterion maps a criterion to PDG seed nodes. When the
// statement(s) at the criterion line use or define the variable, those
// statements seed the closure (the usual case: "write(positives)").
// Otherwise the seeds are the definitions of the variable reaching the
// line, which matches Weiser's "value of var at loc" reading.
func (a *Analysis) resolveCriterion(c Criterion) ([]int, error) {
	nodes := a.CFG.NodesAtLine(c.Line)
	if len(nodes) == 0 {
		return nil, fmt.Errorf("core: no statement at line %d", c.Line)
	}
	var seeds []int
	for _, n := range nodes {
		if n.Stmt == nil {
			continue
		}
		if lang.Def(n.Stmt) == c.Var {
			seeds = append(seeds, n.ID)
			continue
		}
		for _, u := range lang.Uses(n.Stmt) {
			if u == c.Var {
				seeds = append(seeds, n.ID)
				break
			}
		}
	}
	if len(seeds) > 0 {
		return seeds, nil
	}
	// The line neither uses nor defines the variable: slice on the
	// definitions reaching it.
	seeds = a.RD.ReachingDefsOf(nodes[0].ID, c.Var)
	if len(seeds) == 0 {
		return nil, fmt.Errorf("core: variable %q has no reaching definition at line %d and is not used there", c.Var, c.Line)
	}
	return seeds, nil
}

// Live reports whether the node is reachable from Entry.
func (a *Analysis) Live(id int) bool { return a.live[id] }

// The nearest-in-slice walks below follow the trees' parent arrays
// directly instead of the callback Walk helpers: they run for every
// candidate jump on every traversal, and the direct loops keep the
// Figure 7 inner loop free of closure allocations. The tree root
// (Exit) counts as always in the slice, so each walk terminates with
// a well-defined answer.

// nearestPostdomInSlice returns the nearest strict postdominator of v
// present in set (Exit if none). Nodes with undefined postdominators
// (on inescapable cycles) report Exit.
func (a *Analysis) nearestPostdomInSlice(v int, set *bits.Set) int {
	root := a.CFG.Exit.ID
	if !a.PDT.Reachable(v) {
		return root
	}
	idom := a.PDT.Idom
	for v != root {
		v = idom[v]
		if v == root || set.Has(v) {
			break
		}
	}
	return v
}

// nearestLexInSlice returns the nearest proper lexical successor of v
// present in set (Exit if none).
func (a *Analysis) nearestLexInSlice(v int, set *bits.Set) int {
	root := a.CFG.Exit.ID
	parent := a.LST.Parent
	for v != root {
		v = parent[v]
		if v == root || set.Has(v) {
			break
		}
	}
	return v
}
