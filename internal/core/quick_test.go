package core_test

import (
	"reflect"
	"testing"
	"testing/quick"

	"jumpslice/internal/cfg"
	"jumpslice/internal/core"
	"jumpslice/internal/lang"
	"jumpslice/internal/progen"
)

// quickCfg bounds testing/quick's exploration; seeds map through the
// deterministic generators, so shrinking isn't needed — failures print
// the seed.
var quickCfg = &quick.Config{MaxCount: 60}

// analyzeSeed builds an analysis for a quick-generated seed.
func analyzeSeed(seed uint64, structured bool) (*core.Analysis, []core.Criterion) {
	gen := progen.Unstructured
	if structured {
		gen = progen.Structured
	}
	p := gen(progen.Config{Seed: int64(seed % 4096), Stmts: 24})
	a, err := core.Analyze(p)
	if err != nil {
		panic(err)
	}
	var crits []core.Criterion
	for _, wc := range progen.WriteCriteria(p) {
		crits = append(crits, core.Criterion{Var: wc.Var, Line: wc.Line})
	}
	if len(crits) > 2 {
		crits = crits[len(crits)-2:]
	}
	return a, crits
}

// Property: slicing is idempotent — slicing the materialized slice on
// the same criterion returns the same line set.
func TestQuickSliceIdempotent(t *testing.T) {
	f := func(seed uint64, structured bool) bool {
		a, crits := analyzeSeed(seed, structured)
		for _, c := range crits {
			s1, err := a.Agrawal(c)
			if err != nil {
				return false
			}
			sub := s1.Materialize()
			a2, err := core.Analyze(sub)
			if err != nil {
				return false
			}
			s2, err := a2.Agrawal(c)
			if err != nil {
				return false
			}
			// Slicing a slice never grows it.
			l1, l2 := s1.Lines(), s2.Lines()
			set1 := map[int]bool{}
			for _, l := range l1 {
				set1[l] = true
			}
			for _, l := range l2 {
				if !set1[l] {
					t.Logf("seed %d %v: re-slice line %d not in original slice %v", seed, c, l, l1)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

// Property: the slice is monotone in the criterion — slicing on a
// variable at the same line twice gives identical results (purity of
// the API).
func TestQuickSliceDeterministic(t *testing.T) {
	f := func(seed uint64, structured bool) bool {
		a, crits := analyzeSeed(seed, structured)
		for _, c := range crits {
			s1, err := a.Agrawal(c)
			if err != nil {
				return false
			}
			s2, err := a.Agrawal(c)
			if err != nil {
				return false
			}
			if !reflect.DeepEqual(s1.Lines(), s2.Lines()) {
				return false
			}
			if !reflect.DeepEqual(s1.RelabeledLines(), s2.RelabeledLines()) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

// Property: every slice contains its criterion statement and the
// dummy entry node, and every slice member is a real node ID.
func TestQuickSliceWellFormed(t *testing.T) {
	f := func(seed uint64, structured bool) bool {
		a, crits := analyzeSeed(seed, structured)
		for _, c := range crits {
			s, err := a.Agrawal(c)
			if err != nil {
				return false
			}
			found := false
			for _, id := range s.StatementNodes() {
				if id < 0 || id >= a.CFG.NumNodes() {
					return false
				}
				if a.CFG.Nodes[id].Line == c.Line {
					found = true
				}
			}
			if !found {
				t.Logf("seed %d: criterion %v not in its own slice", seed, c)
				return false
			}
			if !s.Has(a.CFG.Entry.ID) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

// Property: materialized slices of generated programs always re-parse
// and re-analyze.
func TestQuickMaterializeRoundTrip(t *testing.T) {
	f := func(seed uint64, structured bool) bool {
		a, crits := analyzeSeed(seed, structured)
		for _, c := range crits {
			s, err := a.Agrawal(c)
			if err != nil {
				return false
			}
			src := lang.Format(s.Materialize(), lang.PrintOptions{})
			if _, err := lang.Parse(src); err != nil {
				t.Logf("seed %d %v: %v\n%s", seed, c, err, src)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

// Property: the conventional slice is always a subset of the Agrawal
// slice (the repair only adds).
func TestQuickConventionalSubsetOfAgrawal(t *testing.T) {
	f := func(seed uint64, structured bool) bool {
		a, crits := analyzeSeed(seed, structured)
		for _, c := range crits {
			conv, err := a.Conventional(c)
			if err != nil {
				return false
			}
			convNodes := append([]int(nil), conv.StatementNodes()...)
			ag, err := a.Agrawal(c)
			if err != nil {
				return false
			}
			for _, id := range convNodes {
				if !ag.Has(id) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

// Property: jumps added by the repair are actual jump statements.
func TestQuickAddedJumpsAreJumps(t *testing.T) {
	f := func(seed uint64, structured bool) bool {
		a, crits := analyzeSeed(seed, structured)
		for _, c := range crits {
			s, err := a.Agrawal(c)
			if err != nil {
				return false
			}
			for _, id := range s.JumpsAdded {
				if !a.CFG.Nodes[id].Kind.IsJump() {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

// Property: retargeted labels always land on slice members (or line 0
// for end-of-program), and only gotos in the slice trigger
// retargeting.
func TestQuickRelabelingWellFormed(t *testing.T) {
	f := func(seed uint64) bool {
		a, crits := analyzeSeed(seed, false)
		for _, c := range crits {
			s, err := a.Agrawal(c)
			if err != nil {
				return false
			}
			inSlice := map[int]bool{}
			for _, l := range s.Lines() {
				inSlice[l] = true
			}
			for label, line := range s.RelabeledLines() {
				if line != 0 && !inSlice[line] {
					t.Logf("seed %d: label %s re-attached to non-slice line %d", seed, label, line)
					return false
				}
				// The original target must be outside the slice.
				target := a.CFG.LabelNode[label]
				if target != nil && s.Has(target.ID) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

// Property: the flowgraph of any generated program is well-formed —
// single entry/exit, mirrored pred/succ lists, jumps with targets.
func TestQuickCFGWellFormed(t *testing.T) {
	f := func(seed uint64, structured bool) bool {
		a, _ := analyzeSeed(seed, structured)
		g := a.CFG
		entries, exits := 0, 0
		for _, n := range g.Nodes {
			switch n.Kind {
			case cfg.KindEntry:
				entries++
			case cfg.KindExit:
				exits++
				if len(n.Out) != 0 {
					return false
				}
			}
			if n.Kind.IsJump() && n.Target == nil {
				return false
			}
			for _, e := range n.Out {
				mirrored := false
				for _, p := range g.Nodes[e.To].In {
					if p == n.ID {
						mirrored = true
					}
				}
				if !mirrored {
					return false
				}
			}
		}
		return entries == 1 && exits == 1
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}
