package core

import "fmt"

// SliceAll computes the Figure 7 (Agrawal) slice for every criterion
// in one batch, in input order. The result for each criterion is
// byte-identical to an individual Agrawal call — same node set, same
// traversal count, same jump-addition order — but the batch shares a
// single SCC condensation of the PDG: backward closures become
// word-parallel unions of memoized per-component bitsets instead of
// per-node graph walks, so the marginal cost of each further
// criterion drops sharply (BenchmarkSliceAll measures the gap).
//
// The condensation cache lives on the Analysis, so successive
// SliceAll calls — the "analyze once, slice many times" service
// pattern — keep reusing it. Concurrent SliceAll calls on the same
// Analysis are safe; each call's slices are still computed serially
// in input order.
func (a *Analysis) SliceAll(crits []Criterion) ([]*Slice, error) {
	eng := a.batchEngine()
	out := make([]*Slice, len(crits))
	for i, c := range crits {
		s, err := a.agrawalWith(c, eng)
		if err != nil {
			return nil, fmt.Errorf("core: SliceAll criterion %d (%s): %w", i, c, err)
		}
		out[i] = s
	}
	return out, nil
}
