// Property-based tests over randomly generated programs. They live in
// an external test package so they can use the baselines package
// (which imports core) without an import cycle.
package core_test

import (
	"errors"
	"reflect"
	"testing"

	"jumpslice/internal/baselines"
	"jumpslice/internal/cfg"
	"jumpslice/internal/core"
	"jumpslice/internal/interp"
	"jumpslice/internal/lang"
	"jumpslice/internal/progen"
)

var propertyInputs = [][]int64{nil, {1, 2, 3}, {-5, 7, 0, 2, 9, -1}, {8, 8, -8, 8}}

// forEachCase runs fn for a spread of generated programs and criteria.
func forEachCase(t *testing.T, gen func(progen.Config) *lang.Program, seeds int,
	fn func(t *testing.T, seed int64, a *core.Analysis, c core.Criterion)) {
	t.Helper()
	for seed := int64(0); seed < int64(seeds); seed++ {
		p := gen(progen.Config{Seed: seed, Stmts: 30})
		a, err := core.Analyze(p)
		if err != nil {
			t.Fatalf("seed %d: analyze: %v", seed, err)
		}
		crits := progen.WriteCriteria(p)
		if len(crits) > 3 {
			crits = crits[len(crits)-3:] // final writes see the most flow
		}
		for _, wc := range crits {
			fn(t, seed, a, core.Criterion{Var: wc.Var, Line: wc.Line})
		}
	}
}

// observationsEqual runs the original and the materialized slice on
// the shared input streams and compares criterion observations. A
// slice that exceeds the step budget is counted as differing: an
// incorrect slice can genuinely diverge (drop an unconditional jump
// and a fuel-guard loop loses its exit) — that *is* the paper's
// motivating failure mode, not a harness bug.
func observationsEqual(t *testing.T, orig *lang.Program, s *core.Slice) bool {
	t.Helper()
	sliced := s.Materialize()
	for _, in := range propertyInputs {
		want, err := interp.Observe(orig, in, s.Criterion.Var, s.Criterion.Line)
		if err != nil {
			t.Fatalf("original run: %v", err)
		}
		got, err := interp.Observe(sliced, in, s.Criterion.Var, s.Criterion.Line)
		if errors.Is(err, interp.ErrStepBudget) {
			return false
		}
		if err != nil {
			t.Fatalf("slice run: %v\nslice:\n%s", err, s.Format())
		}
		if !reflect.DeepEqual(got, want) {
			return false
		}
	}
	return true
}

// TestPropertyAgrawalEqualsBallHorwitzStructured verifies the paper's
// equivalence claim on random structured programs, at node
// granularity.
func TestPropertyAgrawalEqualsBallHorwitzStructured(t *testing.T) {
	forEachCase(t, progen.Structured, 120, func(t *testing.T, seed int64, a *core.Analysis, c core.Criterion) {
		ag, err := a.Agrawal(c)
		if err != nil {
			t.Fatalf("seed %d %v: %v", seed, c, err)
		}
		bh, err := baselines.BallHorwitz(a, c)
		if err != nil {
			t.Fatalf("seed %d %v: %v", seed, c, err)
		}
		if !reflect.DeepEqual(ag.LiveStatementNodes(), bh.LiveStatementNodes()) {
			t.Errorf("seed %d %v: Agrawal %v != BallHorwitz %v\nprogram:\n%s",
				seed, c, ag.Lines(), bh.Lines(),
				lang.Format(a.Prog, lang.PrintOptions{LineNumbers: true}))
		}
	})
}

// TestPropertyAgrawalEqualsBallHorwitzUnstructured repeats the
// equivalence check on flat goto programs with arbitrary control flow.
func TestPropertyAgrawalEqualsBallHorwitzUnstructured(t *testing.T) {
	forEachCase(t, progen.Unstructured, 120, func(t *testing.T, seed int64, a *core.Analysis, c core.Criterion) {
		ag, err := a.Agrawal(c)
		if err != nil {
			t.Fatalf("seed %d %v: %v", seed, c, err)
		}
		bh, err := baselines.BallHorwitz(a, c)
		if err != nil {
			t.Fatalf("seed %d %v: %v", seed, c, err)
		}
		if !reflect.DeepEqual(ag.LiveStatementNodes(), bh.LiveStatementNodes()) {
			t.Errorf("seed %d %v: Agrawal %v != BallHorwitz %v\nprogram:\n%s",
				seed, c, ag.Lines(), bh.Lines(),
				lang.Format(a.Prog, lang.PrintOptions{LineNumbers: true}))
		}
	})
}

// TestPropertyAgrawalSemanticallySound: materialized Figure 7 slices
// of random programs (both corpora) reproduce the original criterion
// observations on every input stream.
func TestPropertyAgrawalSemanticallySound(t *testing.T) {
	for name, gen := range map[string]func(progen.Config) *lang.Program{
		"structured":   progen.Structured,
		"unstructured": progen.Unstructured,
	} {
		t.Run(name, func(t *testing.T) {
			forEachCase(t, gen, 80, func(t *testing.T, seed int64, a *core.Analysis, c core.Criterion) {
				s, err := a.Agrawal(c)
				if err != nil {
					t.Fatalf("seed %d %v: %v", seed, c, err)
				}
				if !observationsEqual(t, a.Prog, s) {
					t.Errorf("seed %d %v: slice changes observable behaviour\nprogram:\n%s\nslice:\n%s",
						seed, c, lang.Format(a.Prog, lang.PrintOptions{LineNumbers: true}), s.Format())
				}
			})
		})
	}
}

// TestPropertyStructuredAlgorithmsSound: Figure 12 and Figure 13
// slices of random structured programs are semantically correct and
// properly ordered by size (12 ⊆ 13).
func TestPropertyStructuredAlgorithmsSound(t *testing.T) {
	forEachCase(t, progen.Structured, 80, func(t *testing.T, seed int64, a *core.Analysis, c core.Criterion) {
		st, err := a.AgrawalStructured(c)
		if err != nil {
			if errors.Is(err, core.ErrUnstructured) {
				t.Fatalf("seed %d: structured generator produced an unstructured program", seed)
			}
			t.Fatalf("seed %d %v: %v", seed, c, err)
		}
		if !observationsEqual(t, a.Prog, st) {
			t.Errorf("seed %d %v: Figure 12 slice changes behaviour\nslice:\n%s", seed, c, st.Format())
		}
		cons, err := a.AgrawalConservative(c)
		if err != nil {
			t.Fatalf("seed %d %v: %v", seed, c, err)
		}
		if !observationsEqual(t, a.Prog, cons) {
			t.Errorf("seed %d %v: Figure 13 slice changes behaviour\nslice:\n%s", seed, c, cons.Format())
		}
		for _, id := range st.StatementNodes() {
			if !cons.Has(id) {
				t.Errorf("seed %d %v: Figure 13 slice missing Figure 12 node %d", seed, c, id)
			}
		}
	})
}

// TestPropertyStructuredEqualsGeneral: the Figure 12 simplification
// computes the Figure 7 slice on every random structured program.
func TestPropertyStructuredEqualsGeneral(t *testing.T) {
	forEachCase(t, progen.Structured, 120, func(t *testing.T, seed int64, a *core.Analysis, c core.Criterion) {
		general, err := a.Agrawal(c)
		if err != nil {
			t.Fatalf("seed %d %v: %v", seed, c, err)
		}
		simplified, err := a.AgrawalStructured(c)
		if err != nil {
			t.Fatalf("seed %d %v: %v", seed, c, err)
		}
		if !reflect.DeepEqual(general.StatementNodes(), simplified.StatementNodes()) {
			t.Errorf("seed %d %v: Figure 7 %v != Figure 12 %v\nprogram:\n%s",
				seed, c, general.Lines(), simplified.Lines(),
				lang.Format(a.Prog, lang.PrintOptions{LineNumbers: true}))
		}
	})
}

// TestPropertySingleTraversalForStructured probes the paper's Section
// 4 conclusion 1 — "for structured programs, a single traversal of
// the postdominator tree is sufficient". Measured, the claim holds in
// ≈99.6% of generated structured programs but NOT always: the
// dependence closure of an added jump (the value operand of a return,
// the guard of a switch fall-through break) can enter the slice after
// an earlier jump's test already ran and flip it, with no
// postdominator/lexical-successor pair anywhere — outside the paper's
// multi-traversal characterization (see EXPERIMENTS.md, Findings).
// The test therefore pins the measured behaviour: at most two
// productive traversals (three total), and logs the distribution.
func TestPropertySingleTraversalForStructured(t *testing.T) {
	hist := map[int]int{}
	forEachCase(t, progen.Structured, 120, func(t *testing.T, seed int64, a *core.Analysis, c core.Criterion) {
		s, err := a.Agrawal(c)
		if err != nil {
			t.Fatalf("seed %d %v: %v", seed, c, err)
		}
		hist[s.Traversals]++
		if s.Traversals > 3 {
			t.Errorf("seed %d %v: %d traversals on a structured program, want <= 3\nprogram:\n%s",
				seed, c, s.Traversals,
				lang.Format(a.Prog, lang.PrintOptions{LineNumbers: true}))
		}
	})
	t.Logf("traversal histogram (total passes incl. final empty one): %v", hist)
}

// TestPropertyNoPostdomLexPairInStructured: the paper's Section 4
// property 1 — a structured program contains no pair (Ni, Nj) with Ni
// postdominating Nj while Nj lexically succeeds Ni.
func TestPropertyNoPostdomLexPairInStructured(t *testing.T) {
	for seed := int64(0); seed < 60; seed++ {
		p := progen.Structured(progen.Config{Seed: seed, Stmts: 30})
		a, err := core.Analyze(p)
		if err != nil {
			t.Fatal(err)
		}
		if !a.Structured() {
			t.Fatalf("seed %d: generator emitted unstructured program", seed)
		}
		for _, ni := range a.CFG.Nodes {
			if ni.Kind == cfg.KindEntry || ni.Kind == cfg.KindExit {
				continue
			}
			for _, nj := range a.CFG.Nodes {
				if nj.Kind == cfg.KindEntry || nj.Kind == cfg.KindExit || ni == nj {
					continue
				}
				if a.PDT.StrictlyDominates(ni.ID, nj.ID) && a.LST.IsSuccessor(nj.ID, ni.ID) {
					t.Fatalf("seed %d: structured program has pdom/lex pair (%v, %v)\n%s",
						seed, ni, nj, lang.Format(p, lang.PrintOptions{LineNumbers: true}))
				}
			}
		}
	}
}

// TestPropertyLyleConservativeBetweenJumps characterizes Lyle's rule
// on the unstructured corpus. Lyle's candidate set is "jumps lying
// between a slice statement and the criterion location"; jumps from
// which the criterion is unreachable (early returns, gotos past the
// write) are outside it — the "certain degenerate cases" the paper's
// Section 5 excepts — and so are jumps in dead code, which Agrawal's
// postdominator/lexical test can include (it never consults
// reachability from entry) but Lyle's betweenness excludes. The
// checkable guarantee is therefore: every *live* Agrawal jump from
// which the criterion is reachable appears in the Lyle slice. The number of cases where the exception bites (Lyle missing
// a needed jump, and hence misbehaving) is logged as an experimental
// result (EXPERIMENTS.md, E1).
func TestPropertyLyleConservativeBetweenJumps(t *testing.T) {
	total, unsound := 0, 0
	forEachCase(t, progen.Unstructured, 60, func(t *testing.T, seed int64, a *core.Analysis, c core.Criterion) {
		ag, err := a.Agrawal(c)
		if err != nil {
			t.Fatalf("seed %d %v: %v", seed, c, err)
		}
		ly, err := baselines.Lyle(a, c)
		if err != nil {
			t.Fatalf("seed %d %v: %v", seed, c, err)
		}
		seeds, err := a.CriterionNodes(c)
		if err != nil {
			t.Fatal(err)
		}
		reachesCriterion := map[int]bool{}
		var mark func(id int)
		seen := map[int]bool{}
		mark = func(id int) {
			if seen[id] {
				return
			}
			seen[id] = true
			reachesCriterion[id] = true
			for _, p := range a.CFG.Nodes[id].In {
				mark(p)
			}
		}
		for _, s := range seeds {
			mark(s)
		}
		live := a.CFG.Reachable()
		for _, id := range ag.StatementNodes() {
			n := a.CFG.Nodes[id]
			if n.Kind.IsJump() && live[id] && reachesCriterion[id] && !ly.Has(id) {
				t.Errorf("seed %d %v: Lyle missing between-jump %v", seed, c, n)
			}
		}
		total++
		if !observationsEqual(t, a.Prog, ly) {
			unsound++
		}
	})
	t.Logf("Lyle degenerate-case failures: %d/%d criteria", unsound, total)
}

// TestPropertyConventionalOftenWrong quantifies the paper's
// motivation: across the unstructured corpus, the conventional slice
// changes observable behaviour in a nontrivial fraction of cases while
// the Figure 7 slice never does (checked elsewhere). This guards
// against the conventional baseline accidentally becoming jump-aware.
func TestPropertyConventionalOftenWrong(t *testing.T) {
	total, wrong := 0, 0
	forEachCase(t, progen.Unstructured, 60, func(t *testing.T, seed int64, a *core.Analysis, c core.Criterion) {
		s, err := a.Conventional(c)
		if err != nil {
			t.Fatalf("seed %d %v: %v", seed, c, err)
		}
		total++
		if !observationsEqual(t, a.Prog, s) {
			wrong++
		}
	})
	if total == 0 {
		t.Fatal("no cases generated")
	}
	t.Logf("conventional slices wrong on %d/%d unstructured cases", wrong, total)
	if wrong == 0 {
		t.Error("conventional slicing never misbehaved on the unstructured corpus — the baseline is suspiciously strong")
	}
}

// TestPropertyMaterializedSlicesReparse: every Figure 7 slice of every
// generated program round-trips through the printer and parser.
func TestPropertyMaterializedSlicesReparse(t *testing.T) {
	for name, gen := range map[string]func(progen.Config) *lang.Program{
		"structured":   progen.Structured,
		"unstructured": progen.Unstructured,
	} {
		t.Run(name, func(t *testing.T) {
			forEachCase(t, gen, 40, func(t *testing.T, seed int64, a *core.Analysis, c core.Criterion) {
				s, err := a.Agrawal(c)
				if err != nil {
					t.Fatalf("seed %d %v: %v", seed, c, err)
				}
				src := lang.Format(s.Materialize(), lang.PrintOptions{})
				if _, err := lang.Parse(src); err != nil {
					t.Errorf("seed %d %v: slice does not reparse: %v\n%s", seed, c, err, src)
				}
			})
		})
	}
}

// TestPropertyWeiserEqualsConventional cross-validates the PDG-based
// conventional engine against Weiser's original iterative dataflow
// algorithm on both random corpora: two independent formulations of
// "the jump-unaware slice" must agree node-for-node.
func TestPropertyWeiserEqualsConventional(t *testing.T) {
	for name, gen := range map[string]func(progen.Config) *lang.Program{
		"structured":   progen.Structured,
		"unstructured": progen.Unstructured,
	} {
		t.Run(name, func(t *testing.T) {
			forEachCase(t, gen, 80, func(t *testing.T, seed int64, a *core.Analysis, c core.Criterion) {
				conv, err := a.Conventional(c)
				if err != nil {
					t.Fatalf("seed %d %v: %v", seed, c, err)
				}
				w, err := baselines.Weiser(a, c)
				if err != nil {
					t.Fatalf("seed %d %v: %v", seed, c, err)
				}
				if !reflect.DeepEqual(conv.StatementNodes(), w.StatementNodes()) {
					t.Errorf("seed %d %v: conventional %v != weiser %v\nprogram:\n%s",
						seed, c, conv.Lines(), w.Lines(),
						lang.Format(a.Prog, lang.PrintOptions{LineNumbers: true}))
				}
			})
		})
	}
}
