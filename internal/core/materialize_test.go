package core

import (
	"reflect"
	"strings"
	"testing"

	"jumpslice/internal/interp"
	"jumpslice/internal/lang"
	"jumpslice/internal/paper"
)

// figureRuns returns, per figure, interpreter configurations that
// exercise both branches of every predicate: input streams for the
// read-based programs and intrinsic values for the c()/c1()-based
// ones.
func figureRuns(f *paper.Figure) []interp.Options {
	switch f.Name {
	case "Figure 10-a":
		var opts []interp.Options
		for _, v := range []int64{0, 1} {
			v := v
			opts = append(opts, interp.Options{
				Intrinsics: map[string]interp.Intrinsic{
					"c1": func([]int64) int64 { return v },
				},
			})
		}
		return opts
	case "Figure 14-a":
		var opts []interp.Options
		for _, v := range []int64{1, 2, 3, 9} {
			v := v
			opts = append(opts, interp.Options{
				Intrinsics: map[string]interp.Intrinsic{
					"c": func([]int64) int64 { return v },
				},
			})
		}
		return opts
	default:
		inputs := [][]int64{
			nil,
			{1},
			{-1},
			{2, -3},
			{-3, 2},
			{3, -1, 4, 0, 5},
			{-2, -2, 7, 7, -1, 6},
		}
		var opts []interp.Options
		for _, in := range inputs {
			opts = append(opts, interp.Options{Input: in})
		}
		return opts
	}
}

// observe runs a program under opts recording the criterion sequence.
func observe(t *testing.T, prog *lang.Program, c paper.Criterion, opts interp.Options) []int64 {
	t.Helper()
	opts.ObserveVar = c.Var
	opts.ObserveLine = c.Line
	res, err := interp.Run(prog, opts)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return res.Observations
}

// TestAgrawalSlicesAreSemanticallyCorrect is the repository's central
// soundness check: for every corpus figure, the materialized Figure 7
// slice produces exactly the original program's sequence of
// criterion-variable values, on every configured run (Weiser's
// slice-correctness criterion for terminating executions).
func TestAgrawalSlicesAreSemanticallyCorrect(t *testing.T) {
	for _, f := range paper.All() {
		f := f
		t.Run(f.Name, func(t *testing.T) {
			a := analyzeFig(t, f)
			s, err := a.Agrawal(crit(f))
			if err != nil {
				t.Fatal(err)
			}
			sliced := s.Materialize()
			orig := f.Parse()
			for _, opts := range figureRuns(f) {
				want := observe(t, orig, f.Criterion, opts)
				got := observe(t, sliced, f.Criterion, opts)
				if !reflect.DeepEqual(got, want) {
					t.Errorf("observations differ: slice %v, original %v\nslice:\n%s",
						got, want, s.Format())
				}
			}
		})
	}
}

// TestStructuredAndConservativeSlicesAreSemanticallyCorrect repeats
// the soundness check for the Figure 12 and Figure 13 algorithms on
// the structured corpus programs.
func TestStructuredAndConservativeSlicesAreSemanticallyCorrect(t *testing.T) {
	for _, f := range paper.All() {
		if !f.Structured {
			continue
		}
		f := f
		t.Run(f.Name, func(t *testing.T) {
			a := analyzeFig(t, f)
			orig := f.Parse()
			for _, algo := range []func(Criterion) (*Slice, error){
				a.AgrawalStructured, a.AgrawalConservative,
			} {
				s, err := algo(crit(f))
				if err != nil {
					t.Fatal(err)
				}
				sliced := s.Materialize()
				for _, opts := range figureRuns(f) {
					want := observe(t, orig, f.Criterion, opts)
					got := observe(t, sliced, f.Criterion, opts)
					if !reflect.DeepEqual(got, want) {
						t.Errorf("%s observations differ: slice %v, original %v",
							s.Algorithm, got, want)
					}
				}
			}
		})
	}
}

// TestConventionalSlicesAreWrongOnJumpPrograms pins the paper's
// motivation: on each program with jump statements, the conventional
// slice misbehaves on at least one run. (On the jump-free Figure 1-a
// it is correct.)
func TestConventionalSlicesAreWrongOnJumpPrograms(t *testing.T) {
	for _, f := range paper.All() {
		f := f
		t.Run(f.Name, func(t *testing.T) {
			a := analyzeFig(t, f)
			s, err := a.Conventional(crit(f))
			if err != nil {
				t.Fatal(err)
			}
			sliced := s.Materialize()
			orig := f.Parse()
			differs := false
			for _, opts := range figureRuns(f) {
				want := observe(t, orig, f.Criterion, opts)
				got := observe(t, sliced, f.Criterion, opts)
				if !reflect.DeepEqual(got, want) {
					differs = true
				}
			}
			if f.Name == "Figure 1-a" {
				if differs {
					t.Error("conventional slice of the jump-free program must be correct")
				}
			} else if !differs {
				t.Errorf("conventional slice of %s should misbehave on some run\nslice:\n%s",
					f.Name, s.Format())
			}
		})
	}
}

// TestMaterializedSlicesReparse: every materialized slice must
// pretty-print to valid source that parses back.
func TestMaterializedSlicesReparse(t *testing.T) {
	for _, f := range paper.All() {
		a := analyzeFig(t, f)
		for _, algo := range []string{"conventional", "agrawal"} {
			var s *Slice
			var err error
			if algo == "conventional" {
				s, err = a.Conventional(crit(f))
			} else {
				s, err = a.Agrawal(crit(f))
			}
			if err != nil {
				t.Fatalf("%s/%s: %v", f.Name, algo, err)
			}
			src := lang.Format(s.Materialize(), lang.PrintOptions{})
			if _, err := lang.Parse(src); err != nil {
				t.Errorf("%s/%s: materialized slice does not reparse: %v\n%s",
					f.Name, algo, err, src)
			}
		}
	}
}

// TestMaterializedFigure3Listing checks the shape of the Figure 3-c
// listing: the retargeted L14 label appears, line 11 does not.
func TestMaterializedFigure3Listing(t *testing.T) {
	f := paper.Fig3()
	a := analyzeFig(t, f)
	s, err := a.Agrawal(crit(f))
	if err != nil {
		t.Fatal(err)
	}
	out := s.Format()
	for _, want := range []string{
		"  2: positives = 0;",
		"  3: L3: if (eof()) goto L14;",
		"  7: goto L13;",
		"  8: L8: positives = positives + 1;",
		" 13: L13: goto L3;",
		"L14:",
		" 15: L14: write(positives);",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("figure 3-c listing missing %q:\n%s", want, out)
		}
	}
	for _, reject := range []string{"sum", "f2", "f3", "goto L12"} {
		if strings.Contains(out, reject) {
			t.Errorf("figure 3-c listing should not contain %q:\n%s", reject, out)
		}
	}
}

// TestMaterializedFigure14Listing checks Figure 14-b: case 1 keeps
// only its break, case 3 disappears.
func TestMaterializedFigure14Listing(t *testing.T) {
	f := paper.Fig14()
	a := analyzeFig(t, f)
	s, err := a.AgrawalStructured(crit(f))
	if err != nil {
		t.Fatal(err)
	}
	out := s.Format()
	for _, want := range []string{"case 1:", "break;", "case 2:", "y = f2();", "write(y);"} {
		if !strings.Contains(out, want) {
			t.Errorf("figure 14-b listing missing %q:\n%s", want, out)
		}
	}
	for _, reject := range []string{"case 3", "f3", "f1", "write(x)", "write(z)"} {
		if strings.Contains(out, reject) {
			t.Errorf("figure 14-b listing should not contain %q:\n%s", reject, out)
		}
	}
}

// TestMaterializedFigure16Listing checks Figure 16-c: goto L6 is kept
// and L6 re-attaches to line 10.
func TestMaterializedFigure16Listing(t *testing.T) {
	f := paper.Fig16()
	a := analyzeFig(t, f)
	s, err := a.Agrawal(crit(f))
	if err != nil {
		t.Fatal(err)
	}
	out := s.Format()
	for _, want := range []string{"goto L6;", "L10: L6: write(y);"} {
		if !strings.Contains(out, want) {
			t.Errorf("figure 16-c listing missing %q:\n%s", want, out)
		}
	}
}

// TestEmptiedCaseStillFallsThrough guards the strict-projection rule:
// pruning every statement of a case must not disconnect it from the
// following case it falls into.
func TestEmptiedCaseStillFallsThrough(t *testing.T) {
	prog := parse(t, `read(c);
y = 0;
switch (c) {
case 1: x = f1();
case 2: y = y + 1;
}
write(y);`)
	a := MustAnalyze(prog)
	s, err := a.Agrawal(Criterion{Var: "y", Line: 7})
	if err != nil {
		t.Fatal(err)
	}
	sliced := s.Materialize()
	for _, in := range []int64{1, 2, 3} {
		want, err := interp.Observe(prog, []int64{in}, "y", 7)
		if err != nil {
			t.Fatal(err)
		}
		got, err := interp.Observe(sliced, []int64{in}, "y", 7)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("input %d: slice observes %v, original %v\n%s", in, got, want, s.Format())
		}
	}
	// And the emptied case 1 must still be present in the listing.
	if out := s.Format(); !strings.Contains(out, "case 1:") {
		t.Errorf("emptied case 1 dropped from listing:\n%s", out)
	}
}

// TestTrailingEmptyCasesDropped: trailing emptied clauses disappear
// from the listing (Figure 14-b's case 3).
func TestTrailingEmptyCasesDropped(t *testing.T) {
	f := paper.Fig14()
	a := analyzeFig(t, f)
	s, err := a.AgrawalStructured(crit(f))
	if err != nil {
		t.Fatal(err)
	}
	prog := s.Materialize()
	sw := lang.Unlabel(prog.Body[0]).(*lang.SwitchStmt)
	if len(sw.Cases) != 2 {
		t.Errorf("materialized switch has %d cases, want 2 (case 3 dropped)", len(sw.Cases))
	}
}

// TestRelabeledToEndOfProgram: a retargeted label whose nearest
// postdominator in the slice is Exit prints as a trailing "L: ;".
func TestRelabeledToEndOfProgram(t *testing.T) {
	prog := parse(t, `read(x);
if (x > 0) goto End;
y = 1;
write(y);
End: z = 1;`)
	a := MustAnalyze(prog)
	s, err := a.Agrawal(Criterion{Var: "y", Line: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !s.Has(a.CFG.NodesAtLine(2)[1].ID) && !s.Has(a.CFG.NodesAtLine(2)[0].ID) {
		t.Skip("goto not in slice; retargeting not exercised")
	}
	m := s.Materialize()
	out := lang.Format(m, lang.PrintOptions{})
	if strings.Contains(out, "goto End;") && !strings.Contains(out, "End:") {
		t.Errorf("slice keeps goto End but drops the label:\n%s", out)
	}
	if _, err := lang.Parse(out); err != nil {
		t.Errorf("materialized slice does not reparse: %v\n%s", err, out)
	}
}
