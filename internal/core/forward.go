package core

import (
	"sort"

	"jumpslice/internal/bits"
	"jumpslice/internal/cfg"
)

// Forward computes the forward slice of a criterion: every statement
// whose computation can be affected by the value of Var at Line,
// i.e. the forward closure over data and control dependence edges.
//
// Forward slices are the impact-analysis dual of the paper's backward
// slices (the regression-testing application of the introduction asks
// exactly this question: which outputs can a change here affect?).
// They are sets of affected statements, not executable subprograms,
// so no jump repair applies — the paper's algorithm is about making
// backward slices runnable.
//
// Seeds: the statements at Line that define or use Var; if none
// mention Var, the statements at Line themselves.
func (a *Analysis) Forward(c Criterion) (*Slice, error) {
	seeds, err := a.resolveCriterion(c)
	if err != nil {
		return nil, err
	}

	// Forward adjacency: invert Deps once per call; analyses are
	// small and Forward is rarely the hot path.
	dependents := make([][]int, a.CFG.NumNodes())
	for n := 0; n < a.CFG.NumNodes(); n++ {
		for _, d := range a.PDG.Deps(n) {
			dependents[d] = append(dependents[d], n)
		}
	}

	set := bits.New(a.CFG.NumNodes())
	var stack []int
	for _, s := range seeds {
		if !set.Has(s) {
			set.Add(s)
			stack = append(stack, s)
		}
	}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, d := range dependents[n] {
			if !set.Has(d) {
				set.Add(d)
				stack = append(stack, d)
			}
		}
	}
	return &Slice{
		Analysis:  a,
		Criterion: c,
		Algorithm: "forward",
		Nodes:     set,
		Relabeled: map[string]int{},
	}, nil
}

// Chop computes the chop between a source and a target criterion: the
// statements lying on some dependence path from the source to the
// target — the intersection of the source's forward slice with the
// target's backward (conventional) slice. Chops answer "how does this
// statement influence that one?" and are the standard program-
// understanding refinement of slicing.
func (a *Analysis) Chop(source, target Criterion) (*Slice, error) {
	fwd, err := a.Forward(source)
	if err != nil {
		return nil, err
	}
	bwd, err := a.Conventional(target)
	if err != nil {
		return nil, err
	}
	set := fwd.Nodes.Clone()
	set.IntersectWith(bwd.Nodes)
	return &Slice{
		Analysis:  a,
		Criterion: target,
		Algorithm: "chop",
		Nodes:     set,
		Relabeled: map[string]int{},
	}, nil
}

// AffectedWrites returns the lines of write statements in the forward
// slice of the criterion — the outputs a change at the criterion can
// influence. This is the query slice-based regression test selection
// asks.
func (a *Analysis) AffectedWrites(c Criterion) ([]int, error) {
	fwd, err := a.Forward(c)
	if err != nil {
		return nil, err
	}
	var lines []int
	fwd.Nodes.ForEach(func(id int) {
		n := a.CFG.Nodes[id]
		if n.Kind == cfg.KindWrite {
			lines = append(lines, n.Line)
		}
	})
	sort.Ints(lines)
	return lines, nil
}
