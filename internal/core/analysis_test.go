package core

import (
	"reflect"
	"testing"

	"jumpslice/internal/cfg"
	"jumpslice/internal/paper"
)

func TestStructuredClassification(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want bool
	}{
		{"no jumps", "x = 1;\nwrite(x);", true},
		{"break in loop", "while (x) { break; }\nwrite(x);", true},
		{"continue in loop", "while (x) { continue; }\nwrite(x);", true},
		{"top-level return", "return;\n", true},
		{"forward goto", "if (x) goto L;\ny = 1;\nL: write(y);", true},
		{"backward goto", "L: x = x + 1;\nif (x < 3) goto L;\nwrite(x);", false},
		{"goto into sibling branch region", paper.Fig10().Source, false},
		{"forward goto across construct", "if (x) goto After;\nwhile (y) { y = y - 1; }\nAfter: write(y);", true},
	}
	for _, c := range cases {
		a := MustAnalyze(parse(t, c.src))
		if got := a.Structured(); got != c.want {
			t.Errorf("%s: Structured() = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestLiveReportsDeadCode(t *testing.T) {
	a := MustAnalyze(parse(t, "goto L;\nx = 1;\nL: write(x);"))
	dead := a.CFG.NodesAtLine(2)[0]
	if a.Live(dead.ID) {
		t.Error("statement after unconditional goto should be dead")
	}
	live := a.CFG.NodesAtLine(3)[0]
	if !a.Live(live.ID) {
		t.Error("goto target should be live")
	}
}

func TestSliceHasAndStatementNodes(t *testing.T) {
	f := paper.Fig1()
	a := MustAnalyze(f.Parse())
	s, err := a.Agrawal(Criterion{Var: f.Criterion.Var, Line: f.Criterion.Line})
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range s.StatementNodes() {
		if !s.Has(id) {
			t.Errorf("StatementNodes returned %d but Has(%d) is false", id, id)
		}
		k := a.CFG.Nodes[id].Kind
		if k == cfg.KindEntry || k == cfg.KindExit {
			t.Errorf("StatementNodes contains %v", a.CFG.Nodes[id])
		}
	}
	// Entry is in the slice set but excluded from the statement view.
	if !s.Has(a.CFG.Entry.ID) {
		t.Error("entry (node 0) should be in every slice set")
	}
	if got, want := s.LiveStatementNodes(), s.StatementNodes(); !reflect.DeepEqual(got, want) {
		t.Errorf("on dead-code-free input, live view %v != statement view %v", got, want)
	}
}

func TestCriterionString(t *testing.T) {
	if got := (Criterion{Var: "positives", Line: 15}).String(); got != "positives@15" {
		t.Errorf("String = %q", got)
	}
}

func TestMustAnalyzePanicsOnBadGraph(t *testing.T) {
	// MustAnalyze itself cannot fail on a parsed program today; check
	// the panic plumbing through a nil-program crash instead.
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	MustAnalyze(nil)
}

func TestAgrawalLSTSameTraversalGuarantees(t *testing.T) {
	// The LST-driven variant also terminates and matches Figure 7 on
	// the corpus (covered in figures_test); here: its Traversals field
	// is populated and at least 1.
	f := paper.Fig10()
	a := MustAnalyze(f.Parse())
	s, err := a.AgrawalLST(Criterion{Var: "y", Line: 9})
	if err != nil {
		t.Fatal(err)
	}
	if s.Traversals < 1 {
		t.Errorf("traversals = %d", s.Traversals)
	}
	if s.Algorithm != "agrawal-lst" {
		t.Errorf("algorithm = %q", s.Algorithm)
	}
}

func TestRepairJumpsOnHandBuiltSet(t *testing.T) {
	// Feed RepairJumps a base set that is not a conventional slice:
	// just the two writes of Figure 3. The repair must still add the
	// jumps needed to order them.
	f := paper.Fig3()
	a := MustAnalyze(f.Parse())
	seed, err := a.Conventional(Criterion{Var: "positives", Line: 15})
	if err != nil {
		t.Fatal(err)
	}
	added, rules, traversals, err := a.RepairJumps(seed.Nodes)
	if err != nil {
		t.Fatal(err)
	}
	if traversals < 1 {
		t.Errorf("traversals = %d", traversals)
	}
	if len(rules) != len(added) {
		t.Errorf("rules = %d entries, want %d (parallel to added)", len(rules), len(added))
	}
	for i, r := range rules {
		if r.NearestPD == r.NearestLS {
			t.Errorf("rule %d: nearest-PD == nearest-LS (%d); the rule cannot have fired", i, r.NearestPD)
		}
	}
	// Idempotence: repairing an already-repaired set adds nothing.
	added2, _, _, err := a.RepairJumps(seed.Nodes)
	if err != nil {
		t.Fatal(err)
	}
	if len(added2) != 0 {
		t.Errorf("second repair added %d jumps, want 0", len(added2))
	}
	_ = added
}

func TestRelabeledLinesEndOfProgram(t *testing.T) {
	// A goto in the slice whose label's statement and every
	// postdominator of it are outside the slice: the label re-attaches
	// to Exit (line 0 in RelabeledLines).
	prog := parse(t, `read(x);
if (x > 0) goto End;
write(x);
End: y = 1;`)
	a := MustAnalyze(prog)
	s, err := a.Agrawal(Criterion{Var: "x", Line: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !s.Has(a.CFG.LabelNode["End"].ID) {
		// Only meaningful when the goto is kept and End's statement
		// is not.
		got := s.RelabeledLines()
		if l, ok := got["End"]; ok && l != 0 {
			t.Errorf("End re-attached to line %d, want 0 (end of program)", l)
		}
	}
}

func TestAnalysisSharedAcrossCriteria(t *testing.T) {
	// One Analysis must serve many criteria without interference.
	f := paper.Fig1()
	a := MustAnalyze(f.Parse())
	s1, err := a.Agrawal(Criterion{Var: "positives", Line: 12})
	if err != nil {
		t.Fatal(err)
	}
	first := append([]int(nil), s1.Lines()...)
	s2, err := a.Agrawal(Criterion{Var: "sum", Line: 11})
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(first, s2.Lines()) {
		t.Error("different criteria should give different slices here")
	}
	s3, err := a.Agrawal(Criterion{Var: "positives", Line: 12})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first, s3.Lines()) {
		t.Errorf("recomputed slice %v differs from first %v — analysis state leaked", s3.Lines(), first)
	}
}

func TestSumSliceOfFigure1(t *testing.T) {
	// The complementary criterion of the paper's Figure 1: slicing on
	// sum keeps the arithmetic chain and drops the positives counter.
	f := paper.Fig1()
	a := MustAnalyze(f.Parse())
	s, err := a.Agrawal(Criterion{Var: "sum", Line: 11})
	if err != nil {
		t.Fatal(err)
	}
	want := []int{1, 3, 4, 5, 6, 8, 9, 10, 11}
	if got := s.Lines(); !reflect.DeepEqual(got, want) {
		t.Errorf("sum slice = %v, want %v", got, want)
	}
}
