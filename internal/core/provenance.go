package core

import (
	"fmt"
	"sort"
	"strings"

	"jumpslice/internal/cfg"
	"jumpslice/internal/lang"
)

// Provenance mode: explain, per statement, why it is in a slice.
//
// A slice is a least fixpoint, so membership always has a finite
// derivation: a statement is a criterion seed, or some statement
// already in the slice depends on it, or one of the jump rules
// admitted it. Explain reconstructs one reason record per derivation
// edge — mostly post hoc from the final set (the dependence relation
// is static, so "t in slice and t depends on s" is checkable after
// the fact), except for the nearest-postdominator/lexical-successor
// rule, whose evidence is captured at admission time in
// Slice.JumpRules because later admissions move both "nearest in
// slice" answers.

// ReasonKind classifies one provenance record.
type ReasonKind uint8

// The reason kinds, in the order they sort within a statement.
const (
	// ReasonCriterion: the statement is a seed of the slicing
	// criterion (it uses or defines the criterion variable at the
	// criterion line, or is a reaching definition of it).
	ReasonCriterion ReasonKind = iota
	// ReasonEntry: the dummy entry predicate, in every slice by
	// construction (the paper's node 0).
	ReasonEntry
	// ReasonDataDep: the in-slice statement From is data dependent on
	// this statement.
	ReasonDataDep
	// ReasonControlDep: the in-slice statement From is control
	// dependent on this statement.
	ReasonControlDep
	// ReasonJumpRule: the jump was admitted by the paper's rule — its
	// nearest postdominator in the slice (NearestPD) differed from
	// its nearest lexical successor in the slice (NearestLS) when it
	// was examined.
	ReasonJumpRule
	// ReasonCondJump: the jump is the body of the conditional jump
	// statement whose predicate From is in the slice (the Section 3
	// adaptation: the predicate is useless without its jump).
	ReasonCondJump
	// ReasonSwitchEnclosure: the switch tag was brought in because
	// the in-slice statement From lies in one of its cases (a slice
	// is a projection; a case body cannot appear without its switch).
	ReasonSwitchEnclosure
	// ReasonJumpCandidate: the jump was admitted by the Figure 13
	// conservative rule — it is directly control dependent on the
	// in-slice predicate From (or, From being a switch tag, enclosed
	// by the in-slice switch).
	ReasonJumpCandidate
)

// String names the kind as it appears in listings and JSON.
func (k ReasonKind) String() string {
	switch k {
	case ReasonCriterion:
		return "criterion"
	case ReasonEntry:
		return "entry"
	case ReasonDataDep:
		return "data-dep"
	case ReasonControlDep:
		return "control-dep"
	case ReasonJumpRule:
		return "jump-rule"
	case ReasonCondJump:
		return "cond-jump"
	case ReasonSwitchEnclosure:
		return "switch-enclosure"
	case ReasonJumpCandidate:
		return "jump-candidate"
	}
	return fmt.Sprintf("ReasonKind(%d)", int(k))
}

// Reason is one provenance record for one slice member.
type Reason struct {
	Kind ReasonKind
	// From is the node ID of the evidence source — the in-slice
	// dependent statement (data/control dep), the conditional-jump
	// predicate, the enclosed case statement, or the candidate-rule
	// predicate. -1 when the kind carries no source (criterion,
	// entry, jump-rule).
	From int
	// NearestPD and NearestLS carry the jump rule's admission
	// evidence (node IDs; either may be the Exit node, "end of
	// program"). -1 for every other kind.
	NearestPD int
	NearestLS int
}

// Provenance maps every node of a slice to its reason records.
type Provenance struct {
	Slice *Slice
	// Reasons holds, for each node ID in the slice, at least one
	// reason, sorted by (Kind, From, NearestPD, NearestLS).
	Reasons map[int][]Reason
}

// Explain computes the provenance of the slice: one or more reason
// records for every member node. For the slices this package computes
// (conventional, the Figure 7/12/13 family, and repaired dynamic
// slices) the result is complete — every member has at least one
// reason whose evidence is itself in the slice — which the property
// tests assert over the generated corpora. For slices imported from
// baseline algorithms that use different machinery (the augmented
// flowgraph of Ball–Horwitz, say) records are best-effort: the
// dependence-edge reasons still hold, but rule records may be absent.
func (s *Slice) Explain() (*Provenance, error) {
	a := s.Analysis
	set := s.Nodes
	p := &Provenance{Slice: s, Reasons: map[int][]Reason{}}
	add := func(node int, r Reason) {
		p.Reasons[node] = append(p.Reasons[node], r)
	}

	// Criterion seeds. The slice was produced from this criterion, so
	// resolution cannot newly fail; the error is forwarded anyway
	// rather than swallowed.
	seeds, err := a.resolveCriterion(s.Criterion)
	if err != nil {
		return nil, fmt.Errorf("core: explain %s: %w", s.Criterion, err)
	}
	for _, v := range seeds {
		if set.Has(v) {
			add(v, Reason{Kind: ReasonCriterion, From: -1, NearestPD: -1, NearestLS: -1})
		}
	}

	// The dummy entry predicate.
	if entry := a.CFG.Entry.ID; set.Has(entry) {
		add(entry, Reason{Kind: ReasonEntry, From: -1, NearestPD: -1, NearestLS: -1})
	}

	// Dependence edges out of slice members: t in slice and t
	// dependent on s justifies s. Iterating members in ascending
	// order keeps record order deterministic before the final sort.
	for t := set.NextSet(0); t >= 0; t = set.NextSet(t + 1) {
		for _, d := range a.PDG.DataDeps(t) {
			if set.Has(d) {
				add(d, Reason{Kind: ReasonDataDep, From: t, NearestPD: -1, NearestLS: -1})
			}
		}
		for _, d := range a.PDG.ControlDeps(t) {
			if set.Has(d) {
				add(d, Reason{Kind: ReasonControlDep, From: t, NearestPD: -1, NearestLS: -1})
			}
		}
	}

	// Jump admissions. JumpRules is parallel to JumpsAdded when the
	// nearest-PD/nearest-LS rule drove the additions (Figures 7 and
	// 12 and the dynamic repair); the Figure 13 algorithm admits by
	// the candidate rule instead, reconstructed post hoc below.
	if len(s.JumpRules) == len(s.JumpsAdded) {
		for i, j := range s.JumpsAdded {
			add(j, Reason{
				Kind:      ReasonJumpRule,
				From:      -1,
				NearestPD: s.JumpRules[i].NearestPD,
				NearestLS: s.JumpRules[i].NearestLS,
			})
		}
	} else {
		for _, j := range s.JumpsAdded {
			if from := a.candidateEvidence(j, set); from >= 0 {
				add(j, Reason{Kind: ReasonJumpCandidate, From: from, NearestPD: -1, NearestLS: -1})
			}
		}
	}

	// The conditional-jump adaptation (Section 3).
	for _, cj := range a.condJumps {
		if set.Has(cj.pred) && set.Has(cj.jump) {
			add(cj.jump, Reason{Kind: ReasonCondJump, From: cj.pred, NearestPD: -1, NearestLS: -1})
		}
	}

	// The switch-enclosure invariant.
	for _, id := range a.switchNodes {
		if sw := a.enclosingSwitch[id]; set.Has(id) && set.Has(sw) {
			add(sw, Reason{Kind: ReasonSwitchEnclosure, From: id, NearestPD: -1, NearestLS: -1})
		}
	}

	for _, rs := range p.Reasons {
		sort.Slice(rs, func(i, j int) bool {
			if rs[i].Kind != rs[j].Kind {
				return rs[i].Kind < rs[j].Kind
			}
			if rs[i].From != rs[j].From {
				return rs[i].From < rs[j].From
			}
			if rs[i].NearestPD != rs[j].NearestPD {
				return rs[i].NearestPD < rs[j].NearestPD
			}
			return rs[i].NearestLS < rs[j].NearestLS
		})
	}
	return p, nil
}

// candidateEvidence returns an in-slice predicate (or switch tag)
// that makes jump v a Figure 13 candidate, or -1.
func (a *Analysis) candidateEvidence(v int, set interface{ Has(int) bool }) int {
	for _, pid := range a.CDG.ParentIDs(v) {
		n := a.CFG.Nodes[pid]
		if (n.Kind == cfg.KindEntry || n.Kind.IsPredicate()) && set.Has(pid) {
			return pid
		}
	}
	if sw := a.enclosingSwitch[v]; sw >= 0 && set.Has(sw) {
		return sw
	}
	return -1
}

// describe renders one reason with source-line coordinates (the
// paper's figures speak in lines): "data-dep from 8",
// "jump-rule(nearest-PD=13, nearest-LS=8)". The Exit node renders as
// "end" (end of program).
func (p *Provenance) describe(r Reason) string {
	a := p.Slice.Analysis
	loc := func(id int) string {
		if id == a.CFG.Exit.ID {
			return "end"
		}
		if l := a.CFG.Nodes[id].Line; l > 0 {
			return fmt.Sprintf("%d", l)
		}
		return fmt.Sprintf("n%d", id)
	}
	switch r.Kind {
	case ReasonCriterion, ReasonEntry:
		return r.Kind.String()
	case ReasonJumpRule:
		return fmt.Sprintf("jump-rule(nearest-PD=%s, nearest-LS=%s)", loc(r.NearestPD), loc(r.NearestLS))
	case ReasonCondJump, ReasonJumpCandidate:
		return fmt.Sprintf("%s(pred=%s)", r.Kind, loc(r.From))
	case ReasonSwitchEnclosure:
		return fmt.Sprintf("switch-enclosure(stmt=%s)", loc(r.From))
	default:
		return fmt.Sprintf("%s from %s", r.Kind, loc(r.From))
	}
}

// LineReasons folds the node-level records down to source lines: for
// each line of the slice, the deduplicated, deterministically ordered
// reason strings of every node on that line. This is the
// machine-checkable form the facade and the -explain flag expose.
func (p *Provenance) LineReasons() map[int][]string {
	a := p.Slice.Analysis
	out := map[int][]string{}
	seen := map[int]map[string]bool{}
	// Node IDs ascend with listing order, so per-line strings come
	// out in derivation order before dedup.
	var ids []int
	for id := range p.Reasons {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		line := a.CFG.Nodes[id].Line
		if line <= 0 {
			continue // Entry and synthesized nodes have no listing line
		}
		if seen[line] == nil {
			seen[line] = map[string]bool{}
		}
		for _, r := range p.Reasons[id] {
			str := p.describe(r)
			if !seen[line][str] {
				seen[line][str] = true
				out[line] = append(out[line], str)
			}
		}
	}
	return out
}

// Listing renders the annotated slice: every slice line with its
// original source text and its reason records as a trailing comment.
//
//	2: positives = 0;  // data-dep from 8
//	7: continue;  // jump-rule(nearest-PD=3, nearest-LS=8)
func (p *Provenance) Listing() string {
	a := p.Slice.Analysis
	texts := lineTexts(a.Prog)
	reasons := p.LineReasons()
	var sb strings.Builder
	for _, line := range p.Slice.Lines() {
		text := strings.TrimRight(texts[line], " \t")
		if text == "" {
			text = "?"
		}
		fmt.Fprintf(&sb, "%3d: %s", line, text)
		if rs := reasons[line]; len(rs) > 0 {
			sb.WriteString("  // ")
			sb.WriteString(strings.Join(rs, "; "))
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// lineTexts maps each source line to its pretty-printed statement
// text (sans line-number prefix and indentation), via the numbered
// whole-program listing.
func lineTexts(prog *lang.Program) map[int]string {
	out := map[int]string{}
	listing := lang.Format(prog, lang.PrintOptions{LineNumbers: true})
	for _, raw := range strings.Split(listing, "\n") {
		s := strings.TrimLeft(raw, " \t")
		colon := strings.IndexByte(s, ':')
		if colon <= 0 {
			continue
		}
		var n int
		if _, err := fmt.Sscanf(s[:colon], "%d", &n); err != nil || n <= 0 {
			continue
		}
		if _, ok := out[n]; !ok {
			out[n] = strings.TrimSpace(s[colon+1:])
		}
	}
	return out
}
