package core

import (
	"fmt"
	"os"
	"sort"
	"testing"

	"jumpslice/internal/lang"
	"jumpslice/internal/progen"
)

// TestSliceInterprocInliningProperty is the soundness/completeness
// check of the two-pass SDG slicer: on MultiProc program sets — where
// value-result parameter passing is equivalent to textual inlining —
// the SDG slice must coincide line-for-line with the intraprocedural
// Agrawal slice of the inlined program, modulo the inlining line map.
// Structural lines (call statements and procedure declarations) are
// excluded from the comparison: they have no image under inlining.
//
// JUMPSLICE_PROGEN_CORPUS, when set, names a directory the generated
// corpus is persisted in and reloaded from (CI caches it between
// jobs, keyed on the generator source hash).
func TestSliceInterprocInliningProperty(t *testing.T) {
	const n = 120
	progs, err := progen.MultiProcCorpus(os.Getenv("JUMPSLICE_PROGEN_CORPUS"), n, progen.Config{Stmts: 15, Procs: 3})
	if err != nil {
		t.Fatalf("corpus: %v", err)
	}
	for seed, p := range progs {
		seed, p := seed, p
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			inl, lmap, err := progen.InlineMain(p)
			if err != nil {
				t.Fatalf("inline: %v", err)
			}
			inv := make(map[int]int, len(lmap))
			for il, ol := range lmap {
				inv[ol] = il
			}
			ps, err := AnalyzeProgramSet(p)
			if err != nil {
				t.Fatalf("analyze set: %v", err)
			}
			a, err := Analyze(inl)
			if err != nil {
				t.Fatalf("analyze inlined: %v", err)
			}
			structural := map[int]bool{}
			for _, s := range p.Body {
				if call, ok := s.(*lang.CallStmt); ok {
					structural[call.P.Line] = true
				}
			}
			for _, pd := range p.Procs {
				structural[pd.P.Line] = true
			}
			for _, wc := range progen.MainWriteCriteria(p) {
				c := Criterion{Var: wc.Var, Line: wc.Line}
				got, err := ps.SliceInterproc(c)
				if err != nil {
					t.Fatalf("%v: sdg slice: %v", c, err)
				}
				iline, ok := inv[wc.Line]
				if !ok {
					t.Fatalf("%v: criterion line has no inlined image", c)
				}
				want, err := a.Agrawal(Criterion{Var: wc.Var, Line: iline})
				if err != nil {
					t.Fatalf("%v: agrawal slice: %v", c, err)
				}
				var mapped []int
				for _, l := range want.Lines() {
					ol, ok := lmap[l]
					if !ok {
						t.Fatalf("%v: agrawal slice line %d (inlined) has no original image", c, l)
					}
					mapped = append(mapped, ol)
				}
				sort.Ints(mapped)
				var sdgLines []int
				for _, l := range got.Lines() {
					if !structural[l] {
						sdgLines = append(sdgLines, l)
					}
				}
				if !equalInts(mapped, sdgLines) {
					t.Errorf("criterion %v:\nsdg (non-structural)  = %v\nagrawal (mapped back) = %v\nprogram:\n%s\ninlined:\n%s",
						c, sdgLines, mapped, lang.Format(p, lang.PrintOptions{}), lang.Format(inl, lang.PrintOptions{}))
				}
			}
		})
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
