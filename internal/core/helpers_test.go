package core

import (
	"testing"

	"jumpslice/internal/lang"
)

// parse is a test helper wrapping lang.Parse with fatal error
// handling.
func parse(t *testing.T, src string) *lang.Program {
	t.Helper()
	p, err := lang.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return p
}
