package core

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"jumpslice/internal/obs"
	"jumpslice/internal/progen"
)

// countdownCtx is a context whose Err flips to context.Canceled after
// a fixed number of Err calls, letting tests land a cancellation at
// any exact point of the pipeline's check cadence — deterministic
// where a timer or a goroutine calling cancel() would race.
type countdownCtx struct {
	context.Context
	remaining atomic.Int64
	done      chan struct{}
}

func newCountdownCtx(n int64) *countdownCtx {
	c := &countdownCtx{Context: context.Background(), done: make(chan struct{})}
	c.remaining.Store(n)
	return c
}

// Done returns a non-nil never-closed channel so bindContext arms the
// cancellation checks (a nil Done disables them by design).
func (c *countdownCtx) Done() <-chan struct{} { return c.done }

func (c *countdownCtx) Err() error {
	if c.remaining.Add(-1) < 0 {
		return context.Canceled
	}
	return nil
}

// calls reports how many Err calls were consumed out of the initial n.
func (c *countdownCtx) calls(n int64) int64 { return n - c.remaining.Load() }

func TestAnalyzeContextAlreadyCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	p := progen.Unstructured(progen.Config{Seed: 3, Stmts: 40})
	if _, err := AnalyzeObservedContext(ctx, p, nil, nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("AnalyzeObservedContext on canceled ctx: err = %v, want context.Canceled", err)
	}
}

func TestAnalyzeContextExpiredDeadline(t *testing.T) {
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Hour))
	defer cancel()
	p := progen.Unstructured(progen.Config{Seed: 3, Stmts: 40})
	if _, err := AnalyzeObservedContext(ctx, p, nil, nil); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("AnalyzeObservedContext past deadline: err = %v, want context.DeadlineExceeded", err)
	}
}

// TestAnalyzeNilAndBackgroundContextsSucceed pins the fast path: a
// context that can never cancel leaves the pipeline unarmed and fully
// functional.
func TestAnalyzeNilAndBackgroundContextsSucceed(t *testing.T) {
	p := progen.Unstructured(progen.Config{Seed: 3, Stmts: 40})
	for name, ctx := range map[string]context.Context{
		"nil": nil, "background": context.Background(),
	} {
		a, err := AnalyzeObservedContext(ctx, p, nil, nil)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if a.cancelf != nil {
			t.Errorf("%s: cancellation armed for a context with no Done channel", name)
		}
		crits := criteriaOf(t, a)
		if _, err := a.Agrawal(crits[0]); err != nil {
			t.Errorf("%s: Agrawal: %v", name, err)
		}
	}
}

func criteriaOf(t *testing.T, a *Analysis) []Criterion {
	t.Helper()
	var crits []Criterion
	for _, wc := range progen.WriteCriteria(a.Prog) {
		crits = append(crits, Criterion{Var: wc.Var, Line: wc.Line})
	}
	if len(crits) == 0 {
		t.Fatal("generated program has no write criteria")
	}
	return crits
}

// TestCancelMidSlice lands a cancellation at every point of the
// slicing pipeline's check cadence: it first counts the checks one
// Agrawal slice consumes, then replays the same slice with the
// countdown set to each intermediate value. Every replay must fail
// with an error wrapping context.Canceled (never a panic, never a
// wrong slice), and must journal a "cancel" trace event naming the
// site that noticed.
func TestCancelMidSlice(t *testing.T) {
	p := progen.Unstructured(progen.Config{Seed: 7, Stmts: 60})

	// Budget Err() generously so analysis and the probe slice both
	// complete; what we count is the slice's own consumption.
	const budget = 1 << 30
	probe := newCountdownCtx(budget)
	a, err := AnalyzeObservedContext(probe, p, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	crit := criteriaOf(t, a)[0]
	afterAnalyze := probe.calls(budget)
	want, err := a.Agrawal(crit)
	if err != nil {
		t.Fatal(err)
	}
	sliceChecks := probe.calls(budget) - afterAnalyze
	if sliceChecks < 2 {
		t.Fatalf("slice consumed %d cancellation checks; cadence too coarse to test", sliceChecks)
	}

	for k := int64(0); k < sliceChecks; k++ {
		fr := obs.NewFlightRecorder(256)
		reg := obs.NewRegistry()
		ctx := newCountdownCtx(budget)
		a, err := AnalyzeObservedContext(ctx, p, reg, obs.NewTracer(fr))
		if err != nil {
			t.Fatal(err)
		}
		// Rearm the countdown so exactly k checks succeed during the
		// slice, then every later check observes cancellation.
		ctx.remaining.Store(k)
		s, err := a.Agrawal(crit)
		if err == nil {
			t.Fatalf("k=%d: slice completed despite cancellation (%d checks expected)", k, sliceChecks)
		}
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("k=%d: err = %v, want wrapped context.Canceled", k, err)
		}
		if s != nil {
			t.Errorf("k=%d: canceled slice returned a non-nil result", k)
		}
		cancels := 0
		for _, ev := range fr.Events() {
			if ev.Kind == obs.KindCancel {
				cancels++
				switch ev.Name {
				case "fig7", "closure", "normalize", "analyze":
				default:
					t.Errorf("k=%d: cancel event at unexpected site %q", k, ev.Name)
				}
			}
		}
		if cancels != 1 {
			t.Errorf("k=%d: journaled %d cancel events, want exactly 1", k, cancels)
		}
	}

	// A fresh uncanceled run still yields the reference slice: the
	// cancellation machinery does not perturb results.
	a2, err := AnalyzeObservedContext(newCountdownCtx(budget), p, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := a2.Agrawal(crit)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Nodes.Equal(want.Nodes) {
		t.Errorf("slice under armed-but-live context differs from reference")
	}
}

// TestCancelCountsAndBatch asserts the cancellations metric increments
// and that the batch (SliceAll) path is cancelable inside its
// condensation closures too.
func TestCancelCountsAndBatch(t *testing.T) {
	p := progen.Unstructured(progen.Config{Seed: 11, Stmts: 60})
	reg := obs.NewRegistry()
	ctx := newCountdownCtx(1 << 30)
	a, err := AnalyzeObservedContext(ctx, p, reg, nil)
	if err != nil {
		t.Fatal(err)
	}
	crits := criteriaOf(t, a)
	ctx.remaining.Store(1)
	if _, err := a.SliceAll(crits); !errors.Is(err, context.Canceled) {
		t.Fatalf("SliceAll under cancellation: err = %v, want wrapped context.Canceled", err)
	}
	snap := reg.Snapshot()
	found := false
	for _, c := range snap.Counters {
		if c.Name == "core.cancellations" && c.Value >= 1 {
			found = true
		}
	}
	if !found {
		t.Errorf("core.cancellations counter missing or zero after a canceled SliceAll: %+v", snap.Counters)
	}
}
