package core

import (
	"errors"
	"reflect"
	"testing"

	"jumpslice/internal/paper"
)

func analyzeFig(t *testing.T, f *paper.Figure) *Analysis {
	t.Helper()
	a, err := Analyze(f.Parse())
	if err != nil {
		t.Fatalf("%s: analyze: %v", f.Name, err)
	}
	return a
}

func crit(f *paper.Figure) Criterion {
	return Criterion{Var: f.Criterion.Var, Line: f.Criterion.Line}
}

// TestFigures runs every corpus figure through the conventional and
// Figure 7 algorithms and, for structured programs, the Figure 12 and
// Figure 13 algorithms, asserting the paper's slice line sets
// verbatim. This covers the paper's Figures 1, 3, 5, 8, 10, 14 and 16.
func TestFigures(t *testing.T) {
	for _, f := range paper.All() {
		f := f
		t.Run(f.Name, func(t *testing.T) {
			a := analyzeFig(t, f)
			c := crit(f)

			conv, err := a.Conventional(c)
			if err != nil {
				t.Fatalf("conventional: %v", err)
			}
			if got := conv.Lines(); !reflect.DeepEqual(got, f.ConventionalLines) {
				t.Errorf("conventional slice = %v, want %v", got, f.ConventionalLines)
			}

			ag, err := a.Agrawal(c)
			if err != nil {
				t.Fatalf("agrawal: %v", err)
			}
			if got := ag.Lines(); !reflect.DeepEqual(got, f.AgrawalLines) {
				t.Errorf("Figure 7 slice = %v, want %v", got, f.AgrawalLines)
			}
			if ag.Traversals != f.WantTraversals {
				t.Errorf("Figure 7 traversals = %d, want %d", ag.Traversals, f.WantTraversals)
			}
			if got := ag.RelabeledLines(); !reflect.DeepEqual(got, f.RetargetedLabels) {
				t.Errorf("retargeted labels = %v, want %v", got, f.RetargetedLabels)
			}

			if got := a.Structured(); got != f.Structured {
				t.Errorf("Structured() = %v, want %v", got, f.Structured)
			}

			if f.Structured {
				st, err := a.AgrawalStructured(c)
				if err != nil {
					t.Fatalf("Figure 12: %v", err)
				}
				if got := st.Lines(); !reflect.DeepEqual(got, f.StructuredLines) {
					t.Errorf("Figure 12 slice = %v, want %v", got, f.StructuredLines)
				}
				cons, err := a.AgrawalConservative(c)
				if err != nil {
					t.Fatalf("Figure 13: %v", err)
				}
				if got := cons.Lines(); !reflect.DeepEqual(got, f.ConservativeLines) {
					t.Errorf("Figure 13 slice = %v, want %v", got, f.ConservativeLines)
				}
			} else {
				if _, err := a.AgrawalStructured(c); !errors.Is(err, ErrUnstructured) {
					t.Errorf("Figure 12 on unstructured program: err = %v, want ErrUnstructured", err)
				}
				if _, err := a.AgrawalConservative(c); !errors.Is(err, ErrUnstructured) {
					t.Errorf("Figure 13 on unstructured program: err = %v, want ErrUnstructured", err)
				}
			}
		})
	}
}

// TestFigure10SecondTraversalAddsNode4 pins down the paper's worked
// trace of Figure 10: the first traversal adds jumps 7 and 2 (pulling
// in predicate 1), the second adds jump 4.
func TestFigure10SecondTraversalAddsNode4(t *testing.T) {
	f := paper.Fig10()
	a := analyzeFig(t, f)
	s, err := a.Agrawal(crit(f))
	if err != nil {
		t.Fatal(err)
	}
	var addedLines []int
	for _, id := range s.JumpsAdded {
		addedLines = append(addedLines, a.CFG.Nodes[id].Line)
	}
	// Preorder visits jump 4 first (rejected in traversal 1), then 7,
	// then 2; traversal 2 accepts 4.
	want := []int{7, 2, 4}
	if !reflect.DeepEqual(addedLines, want) {
		t.Errorf("jumps added in order %v, want %v", addedLines, want)
	}
	if s.Traversals != 3 {
		t.Errorf("traversals = %d, want 3 (two productive + one final)", s.Traversals)
	}
}

// TestFigure3JumpOrder pins the paper's worked trace of Figure 3:
// node 13 is the first jump encountered and added, then node 7; node
// 11 is examined after 13's inclusion and rejected.
func TestFigure3JumpOrder(t *testing.T) {
	f := paper.Fig3()
	a := analyzeFig(t, f)
	s, err := a.Agrawal(crit(f))
	if err != nil {
		t.Fatal(err)
	}
	var addedLines []int
	for _, id := range s.JumpsAdded {
		addedLines = append(addedLines, a.CFG.Nodes[id].Line)
	}
	if !reflect.DeepEqual(addedLines, []int{13, 7}) {
		t.Errorf("jumps added = %v, want [13 7]", addedLines)
	}
}

// TestFigure8ClosurePullsPredicate9 checks the dependence-closure
// behaviour the paper highlights for Figure 8: adding jumps 11 and 13
// forces predicate 9 (and its conditional goto) into the slice.
func TestFigure8ClosurePullsPredicate9(t *testing.T) {
	f := paper.Fig8()
	a := analyzeFig(t, f)

	conv, err := a.Conventional(crit(f))
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range conv.Lines() {
		if l == 9 {
			t.Fatal("line 9 must not be in the conventional slice")
		}
	}
	s, err := a.Agrawal(crit(f))
	if err != nil {
		t.Fatal(err)
	}
	has9 := false
	for _, l := range s.Lines() {
		if l == 9 {
			has9 = true
		}
	}
	if !has9 {
		t.Error("Figure 7 slice must include predicate 9 via jump closure")
	}
}

// TestLSTDrivenTraversalSameSlice verifies the paper's claim that
// driving the search by preorder traversal of the lexical successor
// tree yields the same final slice as the postdominator tree.
func TestLSTDrivenTraversalSameSlice(t *testing.T) {
	for _, f := range paper.All() {
		a := analyzeFig(t, f)
		c := crit(f)
		pdtSlice, err := a.Agrawal(c)
		if err != nil {
			t.Fatalf("%s: %v", f.Name, err)
		}
		lstSlice, err := a.AgrawalLST(c)
		if err != nil {
			t.Fatalf("%s: %v", f.Name, err)
		}
		if !reflect.DeepEqual(pdtSlice.Lines(), lstSlice.Lines()) {
			t.Errorf("%s: PDT-driven %v != LST-driven %v",
				f.Name, pdtSlice.Lines(), lstSlice.Lines())
		}
	}
}

// TestStructuredAgreesWithGeneral: on structured programs the Figure
// 12 algorithm must compute exactly the Figure 7 slice (the paper's
// Section 4 simplification argument).
func TestStructuredAgreesWithGeneral(t *testing.T) {
	for _, f := range paper.All() {
		if !f.Structured {
			continue
		}
		a := analyzeFig(t, f)
		c := crit(f)
		general, err := a.Agrawal(c)
		if err != nil {
			t.Fatalf("%s: %v", f.Name, err)
		}
		simplified, err := a.AgrawalStructured(c)
		if err != nil {
			t.Fatalf("%s: %v", f.Name, err)
		}
		if !reflect.DeepEqual(general.Lines(), simplified.Lines()) {
			t.Errorf("%s: Figure 7 %v != Figure 12 %v",
				f.Name, general.Lines(), simplified.Lines())
		}
	}
}

// TestConservativeIsSuperset: Figure 13 slices contain Figure 12
// slices, and the extra statements are only jump statements.
func TestConservativeIsSuperset(t *testing.T) {
	for _, f := range paper.All() {
		if !f.Structured {
			continue
		}
		a := analyzeFig(t, f)
		c := crit(f)
		precise, err := a.AgrawalStructured(c)
		if err != nil {
			t.Fatalf("%s: %v", f.Name, err)
		}
		cons, err := a.AgrawalConservative(c)
		if err != nil {
			t.Fatalf("%s: %v", f.Name, err)
		}
		for _, id := range precise.StatementNodes() {
			if !cons.Has(id) {
				t.Errorf("%s: node %d in Figure 12 slice missing from Figure 13 slice",
					f.Name, id)
			}
		}
		for _, id := range cons.StatementNodes() {
			if !precise.Has(id) && !a.CFG.Nodes[id].Kind.IsJump() {
				t.Errorf("%s: conservative extra node %d is not a jump", f.Name, id)
			}
		}
	}
}

// TestConventionalNeverAddsUnconditionalJumps: the premise of the
// paper — no statement is data or control... rather, the conventional
// algorithm includes a jump only via the conditional-jump adaptation,
// i.e. only jumps that are the sole branch of an included predicate.
func TestConventionalNeverAddsFreeJumps(t *testing.T) {
	for _, f := range paper.All() {
		a := analyzeFig(t, f)
		conv, err := a.Conventional(crit(f))
		if err != nil {
			t.Fatalf("%s: %v", f.Name, err)
		}
		for _, id := range conv.StatementNodes() {
			n := a.CFG.Nodes[id]
			if !n.Kind.IsJump() {
				continue
			}
			// Every jump in a conventional slice must be the
			// conditional jump of some included predicate.
			justified := false
			for _, p := range a.CFG.Nodes {
				if p.Kind.IsPredicate() && conv.Has(p.ID) {
					if j := a.conditionalJumpOf(p); j != nil && j.ID == id {
						justified = true
					}
				}
			}
			if !justified {
				t.Errorf("%s: conventional slice contains unjustified jump %s", f.Name, n)
			}
		}
	}
}

func TestCriterionErrors(t *testing.T) {
	f := paper.Fig1()
	a := analyzeFig(t, f)
	if _, err := a.Conventional(Criterion{Var: "positives", Line: 99}); err == nil {
		t.Error("expected error for criterion on a non-statement line")
	}
	if _, err := a.Conventional(Criterion{Var: "nosuchvar", Line: 1}); err == nil {
		t.Error("expected error for unknown variable with no reaching defs")
	}
}

func TestCriterionOnDefiningStatement(t *testing.T) {
	// Slicing on the defining statement itself: criterion x@2 seeds at
	// the assignment.
	a := MustAnalyze(parse(t, "read(y);\nx = y + 1;\nwrite(x);"))
	s, err := a.Agrawal(Criterion{Var: "x", Line: 2})
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Lines(); !reflect.DeepEqual(got, []int{1, 2}) {
		t.Errorf("slice = %v, want [1 2]", got)
	}
}

func TestCriterionLineWithoutVar(t *testing.T) {
	// Line 3 neither uses nor defines x: seeds are x's reaching defs.
	a := MustAnalyze(parse(t, "read(x);\nx = x + 1;\ny = 0;\nwrite(y);"))
	s, err := a.Agrawal(Criterion{Var: "x", Line: 3})
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Lines(); !reflect.DeepEqual(got, []int{1, 2}) {
		t.Errorf("slice = %v, want [1 2]", got)
	}
}
