package core

import (
	"reflect"
	"testing"

	"jumpslice/internal/paper"
)

func TestForwardSliceStraightLine(t *testing.T) {
	a := MustAnalyze(parse(t, `read(a);
b = a + 1;
c = 5;
d = b * 2;
write(d);
write(c);`))
	s, err := a.Forward(Criterion{Var: "a", Line: 1})
	if err != nil {
		t.Fatal(err)
	}
	// a flows into b, d, write(d) — but not c or write(c).
	if got := s.Lines(); !reflect.DeepEqual(got, []int{1, 2, 4, 5}) {
		t.Errorf("forward slice = %v, want [1 2 4 5]", got)
	}
}

func TestForwardSliceThroughControl(t *testing.T) {
	a := MustAnalyze(parse(t, `read(p);
if (p > 0) {
x = 1;
}
write(x);`))
	s, err := a.Forward(Criterion{Var: "p", Line: 1})
	if err != nil {
		t.Fatal(err)
	}
	// p decides the if, which controls x = 1, which flows to the
	// write.
	if got := s.Lines(); !reflect.DeepEqual(got, []int{1, 2, 3, 5}) {
		t.Errorf("forward slice = %v, want [1 2 3 5]", got)
	}
}

func TestForwardBackwardDuality(t *testing.T) {
	// n is in Forward(m) iff m is in Conventional-backward(n), for
	// criteria naming the right variables. Spot-check on Figure 1:
	// read(x)@4 affects positives@12, and positives@12's backward
	// slice contains line 4.
	f := paper.Fig1()
	a := MustAnalyze(f.Parse())
	fwd, err := a.Forward(Criterion{Var: "x", Line: 4})
	if err != nil {
		t.Fatal(err)
	}
	has12 := false
	for _, l := range fwd.Lines() {
		if l == 12 {
			has12 = true
		}
	}
	if !has12 {
		t.Errorf("forward slice of read(x) = %v should reach write(positives)@12", fwd.Lines())
	}
	bwd, err := a.Conventional(Criterion{Var: "positives", Line: 12})
	if err != nil {
		t.Fatal(err)
	}
	has4 := false
	for _, l := range bwd.Lines() {
		if l == 4 {
			has4 = true
		}
	}
	if !has4 {
		t.Errorf("backward slice %v should contain line 4", bwd.Lines())
	}
}

func TestChop(t *testing.T) {
	a := MustAnalyze(parse(t, `read(a);
b = a + 1;
c = a * 2;
d = b + 9;
e = c + d;
write(e);
write(b);`))
	// How does b = a+1 (line 2) influence write(e) (line 6)?
	// Through d (line 4) and e (line 5) — but not through c (line 3)
	// and not write(b) (line 7).
	s, err := a.Chop(Criterion{Var: "b", Line: 2}, Criterion{Var: "e", Line: 6})
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Lines(); !reflect.DeepEqual(got, []int{2, 4, 5, 6}) {
		t.Errorf("chop = %v, want [2 4 5 6]", got)
	}
}

func TestChopEmptyWhenUnrelated(t *testing.T) {
	a := MustAnalyze(parse(t, `a = 1;
b = 2;
write(a);
write(b);`))
	s, err := a.Chop(Criterion{Var: "a", Line: 1}, Criterion{Var: "b", Line: 4})
	if err != nil {
		t.Fatal(err)
	}
	// Entry is in both closures; no statements are.
	if got := s.Lines(); len(got) != 0 {
		t.Errorf("chop = %v, want empty", got)
	}
}

func TestAffectedWrites(t *testing.T) {
	// The regression example's question, as an API call: which outputs
	// can the change on line 8 affect?
	a := MustAnalyze(parse(t, `budget = 100;
spent = 0;
items = 0;
rejected = 0;
while (!eof()) {
read(cost);
if (cost > budget - spent) {
rejected = rejected + 1;
break; }
spent = spent + cost;
items = items + 1; }
write(items);
write(spent);
write(rejected);`))
	lines, err := a.AffectedWrites(Criterion{Var: "rejected", Line: 8})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(lines, []int{14}) {
		t.Errorf("affected writes = %v, want [14]", lines)
	}
	// The break on line 9, in contrast, affects everything after it.
	lines, err = a.AffectedWrites(Criterion{Var: "cost", Line: 6})
	if err != nil {
		t.Fatal(err)
	}
	if len(lines) != 3 {
		t.Errorf("read(cost) should affect all three writes, got %v", lines)
	}
}

func TestForwardCriterionErrors(t *testing.T) {
	a := MustAnalyze(parse(t, "x = 1;"))
	if _, err := a.Forward(Criterion{Var: "x", Line: 9}); err == nil {
		t.Error("expected error for bad line")
	}
}
