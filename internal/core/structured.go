package core

import (
	"fmt"

	"jumpslice/internal/cfg"
)

// ErrUnstructured is returned (wrapped) by the Figure 12 and Figure 13
// algorithms when the program contains a non-structured jump; their
// correctness arguments (Section 4, properties 1 and 2) only hold for
// structured programs.
var ErrUnstructured = fmt.Errorf("program contains non-structured jump statements")

// AgrawalStructured computes the slice with the paper's simplified
// algorithm for structured programs (Figure 12): preorder traversal
// of the postdominator tree adds each jump that is (i) directly
// control dependent on a predicate in the slice (widened for C switch
// fall-through; see structuredCandidate below) and (ii) whose nearest
// postdominator in the slice differs from its nearest lexical
// successor in the slice.
//
// Two measured deviations from the paper's Figure 12, both necessary
// for correctness (EXPERIMENTS.md, "Findings"):
//
//   - The traversal iterates to a fixpoint instead of running exactly
//     once. The paper's single-traversal argument (Section 4,
//     property 1) only accounts for jump-jump interactions through
//     postdominator/lexical-successor pairs; the dependence closure of
//     an added jump (a return's value operand, a fall-through guard)
//     can also flip an earlier jump's test, which happens in roughly
//     0.4% of generated structured programs. Traversals reports the
//     passes used.
//   - Added jumps carry their dependence closure (see the loop body).
func (a *Analysis) AgrawalStructured(c Criterion) (*Slice, error) {
	if !a.Structured() {
		return nil, fmt.Errorf("core: Figure 12 algorithm: %w", ErrUnstructured)
	}
	eng := a.engine()
	conv, err := a.conventionalWith(c, eng)
	if err != nil {
		return nil, err
	}
	set := conv.Nodes
	s := &Slice{
		Analysis:  a,
		Criterion: c,
		Algorithm: "agrawal-structured",
		Nodes:     set,
	}
	examined := 0
	for {
		s.Traversals++
		a.m.traversals.Add(1)
		a.tr.Traversal("fig12", s.Traversals)
		if err := a.checkCancel("fig12"); err != nil {
			return nil, err
		}
		changed := false
		for _, v := range a.jumpsPDT {
			if set.Has(v) {
				continue
			}
			if !a.directCandidate(v, set) && !a.switchCandidate(v, set) {
				continue
			}
			a.m.jumpsExamined.Add(1)
			if examined++; examined%cancelCheckJumps == 0 {
				if err := a.checkCancel("fig12"); err != nil {
					return nil, err
				}
			}
			pd := a.nearestPostdomInSlice(v, set)
			ls := a.nearestLexInSlice(v, set)
			if pd == ls {
				continue
			}
			// Paper, Section 4 property 2: a condition-(i) jump's
			// dependences are already in the slice, so the closure
			// below is a no-op for break, continue, and goto — running
			// it anyway is faithful and also covers the two cases the
			// property does not: the value operand of "return e" (a
			// data dependence the property's argument never mentions)
			// and widened (switch fall-through) candidates whose
			// guards are outside the slice.
			if err := a.addJumpWithClosure(set, v, eng); err != nil {
				return nil, err
			}
			s.JumpsAdded = append(s.JumpsAdded, v)
			s.JumpRules = append(s.JumpRules, JumpRule{NearestPD: pd, NearestLS: ls})
			a.m.jumpsAdmitted.Add(1)
			a.tr.JumpAdmitted("fig12", v, pd, ls)
			changed = true
		}
		if !changed {
			break
		}
		if s.Traversals > len(a.CFG.Nodes)+1 {
			return nil, fmt.Errorf("core: Figure 12 algorithm failed to converge after %d traversals", s.Traversals)
		}
	}
	s.Relabeled = a.retargetLabels(set)
	a.recordSlice(s.Algorithm, set)
	return s, nil
}

// AgrawalConservative computes the slice with the paper's conservative
// algorithm for structured programs (Figure 13): every jump directly
// control dependent on a predicate in the slice is included, with no
// postdominator/lexical-successor test at all. The result may include
// jumps the Figure 12 algorithm proves unnecessary (Figure 14-c versus
// 14-b) but never misses a needed one, and the rule can be applied
// on the fly while the conventional slice is being computed.
func (a *Analysis) AgrawalConservative(c Criterion) (*Slice, error) {
	if !a.Structured() {
		return nil, fmt.Errorf("core: Figure 13 algorithm: %w", ErrUnstructured)
	}
	eng := a.engine()
	conv, err := a.conventionalWith(c, eng)
	if err != nil {
		return nil, err
	}
	set := conv.Nodes
	s := &Slice{
		Analysis:  a,
		Criterion: c,
		Algorithm: "agrawal-conservative",
		Nodes:     set,
	}
	// Iterate to a fixpoint: an added jump's dependence closure can
	// make further jumps candidates (same phenomenon as in
	// AgrawalStructured; the on-the-fly reading of the paper's Figure
	// 13 — detect jumps while the conventional closure grows — has
	// the same effect).
	examined := 0
	for pass, changed := 0, true; changed; {
		changed = false
		pass++
		a.m.traversals.Add(1)
		a.tr.Traversal("fig13", pass)
		if err := a.checkCancel("fig13"); err != nil {
			return nil, err
		}
		for _, j := range a.CFG.Jumps() {
			if set.Has(j.ID) || !a.live[j.ID] {
				continue
			}
			a.m.jumpsExamined.Add(1)
			if examined++; examined%cancelCheckJumps == 0 {
				if err := a.checkCancel("fig13"); err != nil {
					return nil, err
				}
			}
			if a.directCandidate(j.ID, set) || a.switchCandidate(j.ID, set) {
				if err := a.addJumpWithClosure(set, j.ID, eng); err != nil {
					return nil, err
				}
				s.JumpsAdded = append(s.JumpsAdded, j.ID)
				a.m.jumpsAdmitted.Add(1)
				// Figure 13 admits by the candidate rule, not the
				// nearest-PD/nearest-LS test; no evidence to carry.
				a.tr.JumpAdmitted("fig13", j.ID, -1, -1)
				changed = true
			}
		}
	}
	s.Relabeled = a.retargetLabels(set)
	a.recordSlice(s.Algorithm, set)
	return s, nil
}

// Candidate conditions for the structured algorithms (Figures 12 and
// 13): condition (i) of the paper plus a necessary widening for C
// switch fall-through.
//
// Condition (i): v is directly control dependent on a predicate in
// the slice. The dummy entry node counts as a predicate: the paper
// makes all top-level statements control dependent on "a dummy
// predicate node, viz., node 0", and that node is in every slice — so
// a top-level return before the criterion is a candidate, as it must
// be (omitting it would let the slice run past a return the original
// program takes).
//
// The widening: v is also a candidate when the switch statement
// enclosing it is in the slice. The paper's Section 4 property 2 —
// "a jump directly control dependent on a predicate P need not be
// included if P is not" — is justified for loops, where the back
// edge makes the loop header control dependent on every jump guard
// inside the body, so a needed jump's guard is always pulled into the
// slice first. It fails for C switches: a case that exits on every
// path (say "if (p) { s; break; } break;") gives fall-through no CFG
// edge at all, so no statement is control dependent on p or on the
// breaks — yet deleting the case's statements creates a brand-new
// fall-through path into the next case. Such breaks must be examined
// whenever their switch is in the slice; the postdominator/lexical
// test then decides, exactly as it does for the paper's Figure 14.
// Jumps admitted only by the widening carry their dependence closure
// along, since their guards are not otherwise in the slice.
// directCandidate implements condition (i).
func (a *Analysis) directCandidate(v int, set interface{ Has(int) bool }) bool {
	for _, p := range a.CDG.ParentIDs(v) {
		n := a.CFG.Nodes[p]
		if (n.Kind == cfg.KindEntry || n.Kind.IsPredicate()) && set.Has(p) {
			return true
		}
	}
	return false
}

// switchCandidate implements the fall-through widening.
func (a *Analysis) switchCandidate(v int, set interface{ Has(int) bool }) bool {
	sw := a.enclosingSwitch[v]
	return sw >= 0 && set.Has(sw)
}
