package core

import (
	"reflect"
	"strings"
	"testing"

	"jumpslice/internal/interp"
)

// This file pins each finding of EXPERIMENTS.md ("Findings") with a
// minimal hand-written counterexample, so the documented repairs
// cannot silently regress.

// TestFindingF1InputCursor: removing one read must not shift the
// values later reads receive. Without the input-cursor variable, the
// slice below would drop read(a) (a is unrelated to the criterion)
// and read(b) would consume the wrong input element.
func TestFindingF1InputCursor(t *testing.T) {
	prog := parse(t, `read(a);
read(b);
write(b);`)
	a := MustAnalyze(prog)
	s, err := a.Agrawal(Criterion{Var: "b", Line: 3})
	if err != nil {
		t.Fatal(err)
	}
	gotLines := s.Lines()
	if !reflect.DeepEqual(gotLines, []int{1, 2, 3}) {
		t.Fatalf("slice = %v, want [1 2 3] (read(a) kept for cursor position)", gotLines)
	}
	// And the semantic check that motivated it.
	in := []int64{10, 20}
	want, err := interp.Observe(prog, in, "b", 3)
	if err != nil {
		t.Fatal(err)
	}
	got, err := interp.Observe(s.Materialize(), in, "b", 3)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("slice observes %v, original %v", got, want)
	}
}

// TestFindingF1EOFUsesCursor: a loop condition calling eof() depends
// on the reads that advance the stream.
func TestFindingF1EOFUsesCursor(t *testing.T) {
	prog := parse(t, `n = 0;
while (!eof()) {
read(x);
n = n + 1;
}
write(n);`)
	a := MustAnalyze(prog)
	s, err := a.Agrawal(Criterion{Var: "n", Line: 6})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, l := range s.Lines() {
		if l == 3 {
			found = true
		}
	}
	if !found {
		t.Errorf("slice %v must keep read(x): eof() depends on stream position", s.Lines())
	}
}

// TestFindingF2SwitchFallthroughBreaks is the minimal program where
// the paper's Figure 12 condition (i) fails: the case exits on every
// path, so neither break is control dependent on anything in the
// slice, yet dropping both lets case 0 fall into case 1.
func TestFindingF2SwitchFallthroughBreaks(t *testing.T) {
	prog := parse(t, `read(x);
y = 0;
switch (x % 2) {
case 0:
if (x < 0) {
z = 1;
break; }
break;
case 1:
y = 2;
}
write(y);`)
	a := MustAnalyze(prog)
	c := Criterion{Var: "y", Line: 12}

	s, err := a.AgrawalStructured(c)
	if err != nil {
		t.Fatal(err)
	}
	// The widened candidate set must pull in at least one of the
	// breaks; the pdom/lex test keeps what is needed.
	hasBreak := false
	for _, l := range s.Lines() {
		if l == 7 || l == 8 {
			hasBreak = true
		}
	}
	if !hasBreak {
		t.Fatalf("Figure 12 slice %v keeps no break; case 0 would fall into case 1", s.Lines())
	}
	// Semantic check on an even input (the failing path of the
	// unrepaired algorithm).
	for _, in := range [][]int64{{4}, {3}, {-4}, {-3}} {
		want, err := interp.Observe(prog, in, "y", 12)
		if err != nil {
			t.Fatal(err)
		}
		got, err := interp.Observe(s.Materialize(), in, "y", 12)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("input %v: slice observes %v, original %v\n%s", in, got, want, s.Format())
		}
	}
}

// TestFindingF2SwitchEnclosureInvariant: a statement that
// postdominates its switch's dispatch (fall-through into default) is
// not control dependent on the switch; the slice must include the
// switch anyway, or the materialized program is not a projection.
func TestFindingF2SwitchEnclosureInvariant(t *testing.T) {
	prog := parse(t, `read(c);
switch (c) {
case 0:
write(c);
default:
y = 7;
}
write(y);`)
	a := MustAnalyze(prog)
	s, err := a.Agrawal(Criterion{Var: "y", Line: 8})
	if err != nil {
		t.Fatal(err)
	}
	// y = 7 runs on every path through the switch, so it is not
	// control dependent on the switch — but the slice must contain
	// the switch (and, through its tag's data deps, the read).
	want := []int{1, 2, 6, 8}
	if got := s.Lines(); !reflect.DeepEqual(got, want) {
		t.Errorf("slice = %v, want %v (switch kept via enclosure invariant)", got, want)
	}
}

// TestFindingF3ReturnOperandClosure: adding "return e" as a jump must
// pull e's definitions into the slice; Figure 12 and Figure 7 agree.
func TestFindingF3ReturnOperandClosure(t *testing.T) {
	prog := parse(t, `v = 5;
read(x);
if (x > 0) {
return v;
}
y = 1;
write(y);`)
	a := MustAnalyze(prog)
	c := Criterion{Var: "y", Line: 7}
	g7, err := a.Agrawal(c)
	if err != nil {
		t.Fatal(err)
	}
	g12, err := a.AgrawalStructured(c)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(g7.Lines(), g12.Lines()) {
		t.Errorf("Figure 7 %v != Figure 12 %v", g7.Lines(), g12.Lines())
	}
	// The return's operand definition (line 1) rides along.
	has1 := false
	for _, l := range g7.Lines() {
		if l == 1 {
			has1 = true
		}
	}
	if !has1 {
		t.Errorf("slice %v missing the return operand's definition", g7.Lines())
	}
}

// TestFindingF5GuardedReturn: the common case around finding F5 — a
// guarded early return must enter every jump-aware slice (here via
// the ordinary condition (i), since the guard is a real predicate).
func TestFindingF5GuardedReturn(t *testing.T) {
	prog := parse(t, `y = 1;
read(x);
if (x > 0) return x;
write(y);`)
	a := MustAnalyze(prog)
	for _, algo := range []func(Criterion) (*Slice, error){
		a.Agrawal, a.AgrawalStructured, a.AgrawalConservative,
	} {
		s, err := algo(Criterion{Var: "y", Line: 4})
		if err != nil {
			t.Fatal(err)
		}
		hasReturn := false
		for _, l := range s.Lines() {
			if l == 3 {
				hasReturn = true
			}
		}
		if !hasReturn {
			t.Errorf("%s slice %v missing the guarded return", s.Algorithm, s.Lines())
		}
		// Semantics: with x > 0 the original never writes.
		for _, in := range [][]int64{{5}, {-5}} {
			want, err := interp.Observe(prog, in, "y", 4)
			if err != nil {
				t.Fatal(err)
			}
			got, err := interp.Observe(s.Materialize(), in, "y", 4)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Errorf("%s input %v: slice %v, original %v", s.Algorithm, in, got, want)
			}
		}
	}
}

// TestFindingF5DeadCriterion is the finding proper: a criterion below
// an unconditional top-level return — dead code — still slices, and
// the slice includes the return (whose only control dependence is the
// dummy entry predicate, node 0) so the criterion stays unreached in
// the slice too. All three jump-aware algorithms must agree.
func TestFindingF5DeadCriterion(t *testing.T) {
	prog := parse(t, `y = 1;
return y;
write(y);`)
	a := MustAnalyze(prog)
	for _, algo := range []func(Criterion) (*Slice, error){
		a.Agrawal, a.AgrawalStructured, a.AgrawalConservative,
	} {
		s, err := algo(Criterion{Var: "y", Line: 3})
		if err != nil {
			t.Fatal(err)
		}
		want, err := interp.Observe(prog, nil, "y", 3)
		if err != nil {
			t.Fatal(err)
		}
		got, err := interp.Observe(s.Materialize(), nil, "y", 3)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%s: dead criterion: slice observes %v, original %v\n%s",
				s.Algorithm, got, want, s.Format())
		}
		if len(want) != 0 {
			t.Fatalf("test setup: criterion should be unreached in the original")
		}
	}
}

// TestFindingF7LyleEarlyReturn demonstrates the degenerate case: an
// early return the criterion cannot be reached from is outside Lyle's
// "between" candidate set, and his slice misbehaves — while Figure 7
// keeps it.
func TestFindingF7LyleEarlyReturn(t *testing.T) {
	prog := parse(t, `y = 1;
read(x);
if (x > 0) return x;
y = 2;
write(y);`)
	a := MustAnalyze(prog)
	s, err := a.Agrawal(Criterion{Var: "y", Line: 5})
	if err != nil {
		t.Fatal(err)
	}
	out := s.Format()
	if !strings.Contains(out, "return x;") {
		t.Errorf("Figure 7 slice must keep the early return:\n%s", out)
	}
	want, err := interp.Observe(prog, []int64{5}, "y", 5)
	if err != nil {
		t.Fatal(err)
	}
	got, err := interp.Observe(s.Materialize(), []int64{5}, "y", 5)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("slice observes %v, original %v", got, want)
	}
}
