package core

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"jumpslice/internal/incremental"
	"jumpslice/internal/lang"
	"jumpslice/internal/obs"
	"jumpslice/internal/progen"
)

// fig8src is the Figure 8(a)-style program the deterministic tier
// tests edit: it has loops, conditional jumps and labels, so every
// reused structure is non-trivial.
const fig8src = `sum = 0;
positives = 0;
L3: if (eof()) goto L14;
read(x);
if (x > 0) goto L8;
sum = sum + f1(x);
goto L3;
L8: positives = positives + 1;
if (x % 2 != 0) goto L12;
sum = sum + f2(x);
goto L3;
L12: sum = sum + f3(x);
goto L3;
L14: write(sum);
write(positives);
`

// straightSrc is loop-free, so every augmented-dependence SCC is a
// singleton and a one-line expression edit is condensation-patchable.
const straightSrc = `read(a);
read(b);
c = a + b;
d = c * 2;
e = d - a;
write(c);
write(d);
write(e);
`

func editSrcLine(t *testing.T, src string, line int, text string) string {
	t.Helper()
	lines := strings.Split(src, "\n")
	if line < 1 || line > len(lines) {
		t.Fatalf("editSrcLine: line %d out of range", line)
	}
	lines[line-1] = text
	return strings.Join(lines, "\n")
}

func analyzeSrc(t *testing.T, src string) *Analysis {
	t.Helper()
	a, err := Analyze(lang.MustParse(src))
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	return a
}

// incrAlgos is the per-criterion algorithm matrix the identity checks
// run; the structured pair legitimately errors on unstructured
// programs, and the checks require the incremental and cold runs to
// agree on that too.
var incrAlgos = []struct {
	name string
	run  func(*Analysis, Criterion) (*Slice, error)
}{
	{"agrawal", (*Analysis).Agrawal},
	{"agrawal-lst", (*Analysis).AgrawalLST},
	{"structured", (*Analysis).AgrawalStructured},
	{"conservative", (*Analysis).AgrawalConservative},
	{"conventional", (*Analysis).Conventional},
}

// requireSameSlices asserts that the incrementally derived analysis
// and a cold analysis of the same source are observationally
// byte-identical: same lines, traversal counts, added jumps, label
// retargeting and materialized text for every algorithm and
// criterion, and the same batch results.
func requireSameSlices(t *testing.T, ctxt string, inc, cold *Analysis, crits []Criterion) {
	t.Helper()
	if !inc.PDT.Equal(cold.PDT) {
		t.Fatalf("%s: reused postdominator tree differs from cold rebuild", ctxt)
	}
	for _, c := range crits {
		for _, alg := range incrAlgos {
			si, errI := alg.run(inc, c)
			sc, errC := alg.run(cold, c)
			if (errI == nil) != (errC == nil) {
				t.Fatalf("%s: %s(%v): incremental err=%v, cold err=%v", ctxt, alg.name, c, errI, errC)
			}
			if errI != nil {
				continue
			}
			if got, want := fmt.Sprint(si.Lines()), fmt.Sprint(sc.Lines()); got != want {
				t.Fatalf("%s: %s(%v): lines %s, cold %s", ctxt, alg.name, c, got, want)
			}
			if si.Traversals != sc.Traversals {
				t.Fatalf("%s: %s(%v): traversals %d, cold %d", ctxt, alg.name, c, si.Traversals, sc.Traversals)
			}
			if got, want := fmt.Sprint(si.JumpsAdded), fmt.Sprint(sc.JumpsAdded); got != want {
				t.Fatalf("%s: %s(%v): jumps added %s, cold %s", ctxt, alg.name, c, got, want)
			}
			if got, want := fmt.Sprint(si.RelabeledLines()), fmt.Sprint(sc.RelabeledLines()); got != want {
				t.Fatalf("%s: %s(%v): relabeled %s, cold %s", ctxt, alg.name, c, got, want)
			}
			if alg.name == "agrawal" {
				gi := lang.Format(si.Materialize(), lang.PrintOptions{})
				gc := lang.Format(sc.Materialize(), lang.PrintOptions{})
				if gi != gc {
					t.Fatalf("%s: %s(%v): materialized text differs\nincremental:\n%s\ncold:\n%s", ctxt, alg.name, c, gi, gc)
				}
			}
		}
	}
	bi, errI := inc.SliceAll(crits)
	bc, errC := cold.SliceAll(crits)
	if (errI == nil) != (errC == nil) {
		t.Fatalf("%s: SliceAll: incremental err=%v, cold err=%v", ctxt, errI, errC)
	}
	if errI == nil {
		for i := range bi {
			if !bi[i].Nodes.Equal(bc[i].Nodes) {
				t.Fatalf("%s: SliceAll[%d]: incremental %v, cold %v", ctxt, i, bi[i].Lines(), bc[i].Lines())
			}
		}
	}
}

func writeCriteria(p *lang.Program, cap int) []Criterion {
	wc := progen.WriteCriteria(p)
	crits := make([]Criterion, 0, len(wc))
	for _, c := range wc {
		crits = append(crits, Criterion{Var: c.Var, Line: c.Line})
	}
	if cap > 0 && len(crits) > cap {
		// Spread the kept criteria over the program instead of taking a
		// prefix, so late statements stay covered.
		kept := make([]Criterion, 0, cap)
		for i := 0; i < cap; i++ {
			kept = append(kept, crits[i*len(crits)/cap])
		}
		crits = kept
	}
	return crits
}

func TestReanalyzeIdenticalIsPatched(t *testing.T) {
	prev := analyzeSrc(t, fig8src)
	a, stats, err := Reanalyze(prev, fig8src)
	if err != nil {
		t.Fatalf("Reanalyze: %v", err)
	}
	if stats.Outcome != "patched" || len(stats.Edits) != 0 || stats.Fallback != "" {
		t.Fatalf("identical source: stats = %+v", stats)
	}
	if a.PDT != prev.PDT {
		t.Fatal("identical source: postdominator tree was not shared")
	}
	requireSameSlices(t, "identical", a, analyzeSrc(t, fig8src),
		[]Criterion{{Var: "sum", Line: 14}, {Var: "positives", Line: 15}})
}

func TestReanalyzeExpressionEditIsPatched(t *testing.T) {
	prev := analyzeSrc(t, fig8src)
	newSrc := editSrcLine(t, fig8src, 6, "sum = sum + f1(x) + 1;")
	a, stats, err := Reanalyze(prev, newSrc)
	if err != nil {
		t.Fatalf("Reanalyze: %v", err)
	}
	if stats.Outcome != "patched" {
		t.Fatalf("expression edit: outcome %q (fallback %q), want patched", stats.Outcome, stats.Fallback)
	}
	if len(stats.Edits) != 1 || stats.Edits[0].Op != incremental.OpReplace {
		t.Fatalf("expression edit: edits = %+v", stats.Edits)
	}
	if stats.PhasesReused < 5 {
		t.Fatalf("expression edit: phases reused = %d, want >= 5", stats.PhasesReused)
	}
	requireSameSlices(t, "expr edit", a, analyzeSrc(t, newSrc),
		[]Criterion{{Var: "sum", Line: 14}, {Var: "positives", Line: 15}})
}

func TestReanalyzeDefEditIsPartial(t *testing.T) {
	prev := analyzeSrc(t, fig8src)
	newSrc := editSrcLine(t, fig8src, 2, "others = 0;")
	a, stats, err := Reanalyze(prev, newSrc)
	if err != nil {
		t.Fatalf("Reanalyze: %v", err)
	}
	if stats.Outcome != "partial" {
		t.Fatalf("def edit: outcome %q (fallback %q), want partial", stats.Outcome, stats.Fallback)
	}
	requireSameSlices(t, "def edit", a, analyzeSrc(t, newSrc),
		[]Criterion{{Var: "sum", Line: 14}, {Var: "x", Line: 4}})
}

func TestReanalyzeStructuralEditIsFull(t *testing.T) {
	prev := analyzeSrc(t, fig8src)
	newSrc := fig8src + "write(sum);\n"
	a, stats, err := Reanalyze(prev, newSrc)
	if err != nil {
		t.Fatalf("Reanalyze: %v", err)
	}
	if stats.Outcome != "full" || stats.Fallback == "" {
		t.Fatalf("structural edit: stats = %+v", stats)
	}
	if stats.PhasesReused != 0 {
		t.Fatalf("structural edit: phases reused = %d, want 0", stats.PhasesReused)
	}
	requireSameSlices(t, "structural edit", a, analyzeSrc(t, newSrc),
		[]Criterion{{Var: "sum", Line: 14}})
}

func TestReanalyzeNilPreviousIsFull(t *testing.T) {
	a, stats, err := Reanalyze(nil, fig8src)
	if err != nil {
		t.Fatalf("Reanalyze: %v", err)
	}
	if stats.Outcome != "full" || a == nil {
		t.Fatalf("nil previous: stats = %+v", stats)
	}
}

func TestReanalyzeParseErrorPropagates(t *testing.T) {
	prev := analyzeSrc(t, fig8src)
	if _, _, err := Reanalyze(prev, "if ("); err == nil {
		t.Fatal("Reanalyze of unparsable source: expected error")
	}
}

// TestReanalyzeSpliceLine drives the editor fast path end to end: the
// replacement statement is spliced into the previous AST without a
// full reparse, then re-analyzed, and must match a cold analysis of
// the equivalent full text.
func TestReanalyzeSpliceLine(t *testing.T) {
	prev := analyzeSrc(t, fig8src)
	p2, ok := incremental.SpliceLine(prev.Prog, 6, "sum = sum + f9(x);")
	if !ok {
		t.Fatal("SpliceLine refused a one-line simple statement edit")
	}
	a, stats, err := ReanalyzeProgram(prev.Context(), prev, p2, nil, nil)
	if err != nil {
		t.Fatalf("ReanalyzeProgram: %v", err)
	}
	if stats.Outcome != "patched" {
		t.Fatalf("spliced edit: outcome %q (fallback %q), want patched", stats.Outcome, stats.Fallback)
	}
	newSrc := editSrcLine(t, fig8src, 6, "sum = sum + f9(x);")
	requireSameSlices(t, "spliced edit", a, analyzeSrc(t, newSrc),
		[]Criterion{{Var: "sum", Line: 14}, {Var: "positives", Line: 15}})
}

// TestReanalyzeCondensationPatched warms the previous analysis's
// batch condensation, applies a patchable edit (straight-line code,
// so every SCC is a singleton), and checks the condensation survived
// and still answers batch queries exactly like a cold build.
func TestReanalyzeCondensationPatched(t *testing.T) {
	prev := analyzeSrc(t, straightSrc)
	crits := []Criterion{{Var: "c", Line: 6}, {Var: "e", Line: 8}}
	if _, err := prev.SliceAll(crits); err != nil {
		t.Fatalf("warming SliceAll: %v", err)
	}
	newSrc := editSrcLine(t, straightSrc, 5, "e = d - a + b;")
	a, stats, err := Reanalyze(prev, newSrc)
	if err != nil {
		t.Fatalf("Reanalyze: %v", err)
	}
	if stats.Outcome != "patched" {
		t.Fatalf("outcome %q (fallback %q), want patched", stats.Outcome, stats.Fallback)
	}
	if !stats.CondensationPatched {
		t.Fatalf("condensation was not patched: %+v", stats)
	}
	requireSameSlices(t, "condensation patch", a, analyzeSrc(t, newSrc), crits)
}

// TestReanalyzeCounters checks the incr.* counters the session daemon
// exports: reused/recomputed phase counts per tier, and fallbacks.
func TestReanalyzeCounters(t *testing.T) {
	reg := obs.NewRegistry()
	prev, err := AnalyzeRecorded(lang.MustParse(fig8src), reg)
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	newSrc := editSrcLine(t, fig8src, 6, "sum = sum + f1(x) + 1;")
	if _, _, err := ReanalyzeObservedContext(prev.Context(), prev, newSrc, reg, nil); err != nil {
		t.Fatalf("Reanalyze: %v", err)
	}
	if got := reg.Counter("incr.reused").Value(); got < 5 {
		t.Fatalf("incr.reused = %d, want >= 5", got)
	}
	if got := reg.Counter("incr.recomputed").Value(); got != 2 {
		t.Fatalf("incr.recomputed = %d, want 2", got)
	}
	if got := reg.Counter("incr.fallbacks").Value(); got != 0 {
		t.Fatalf("incr.fallbacks = %d, want 0", got)
	}
	if _, _, err := ReanalyzeObservedContext(prev.Context(), prev, fig8src+"write(sum);\n", reg, nil); err != nil {
		t.Fatalf("Reanalyze: %v", err)
	}
	if got := reg.Counter("incr.fallbacks").Value(); got != 1 {
		t.Fatalf("incr.fallbacks after structural edit = %d, want 1", got)
	}
}

// TestReanalyzePreviousSurvives checks that re-analysis never mutates
// the previous analysis: it must keep producing its own slices
// byte-identically after being used as the donor for an edit.
func TestReanalyzePreviousSurvives(t *testing.T) {
	prev := analyzeSrc(t, fig8src)
	crits := []Criterion{{Var: "sum", Line: 14}, {Var: "positives", Line: 15}}
	if _, err := prev.SliceAll(crits); err != nil {
		t.Fatalf("warming SliceAll: %v", err)
	}
	before, err := prev.Agrawal(crits[0])
	if err != nil {
		t.Fatalf("Agrawal: %v", err)
	}
	newSrc := editSrcLine(t, fig8src, 6, "sum = sum + f1(x) + 1;")
	if _, _, err := Reanalyze(prev, newSrc); err != nil {
		t.Fatalf("Reanalyze: %v", err)
	}
	requireSameSlices(t, "donor after reanalyze", prev, analyzeSrc(t, fig8src), crits)
	after, err := prev.Agrawal(crits[0])
	if err != nil {
		t.Fatalf("Agrawal after Reanalyze: %v", err)
	}
	if !before.Nodes.Equal(after.Nodes) {
		t.Fatal("Reanalyze mutated the donor analysis")
	}
}

// ---------------------------------------------------------------------
// Randomized-edit property test: on both generated corpora, chains of
// random edits re-analyzed incrementally must stay byte-identical
// with a cold analysis of the final text, across every algorithm.

// mutate applies one random statement-level edit to a freshly parsed
// copy of src and returns the new source text plus the tier the edit
// should land in ("patched", "partial", "full", or "" for any).
func mutate(rng *rand.Rand, src string) (string, string) {
	p := lang.MustParse(src)
	stmts := lang.Statements(p)
	switch rng.Intn(4) {
	case 0: // expression tweak at a random assignment or write
		var cands []lang.Stmt
		for _, s := range stmts {
			switch lang.Unlabel(s).(type) {
			case *lang.AssignStmt, *lang.WriteStmt:
				cands = append(cands, s)
			}
		}
		if len(cands) == 0 {
			return src, ""
		}
		lit := &lang.IntLit{Value: int64(1 + rng.Intn(9))}
		switch s := lang.Unlabel(cands[rng.Intn(len(cands))]).(type) {
		case *lang.AssignStmt:
			s.Value = &lang.BinaryExpr{Op: "+", X: s.Value, Y: lit}
		case *lang.WriteStmt:
			s.Value = &lang.BinaryExpr{Op: "+", X: s.Value, Y: lit}
		}
		return lang.Format(p, lang.PrintOptions{}), "patched"
	case 1: // definition rename at a random assignment or read
		var cands []lang.Stmt
		for _, s := range stmts {
			switch lang.Unlabel(s).(type) {
			case *lang.AssignStmt, *lang.ReadStmt:
				cands = append(cands, s)
			}
		}
		if len(cands) == 0 {
			return src, ""
		}
		name := fmt.Sprintf("v%d", rng.Intn(8))
		tier := "partial"
		switch s := lang.Unlabel(cands[rng.Intn(len(cands))]).(type) {
		case *lang.AssignStmt:
			if s.Name == name {
				tier = "patched" // no-op rename: identical program
			}
			s.Name = name
		case *lang.ReadStmt:
			if s.Name == name {
				tier = "patched"
			}
			s.Name = name
		}
		return lang.Format(p, lang.PrintOptions{}), tier
	case 2: // insert a top-level assignment
		at := rng.Intn(len(p.Body) + 1)
		ins := &lang.AssignStmt{
			Name:  fmt.Sprintf("v%d", rng.Intn(8)),
			Value: &lang.IntLit{Value: int64(rng.Intn(100))},
		}
		p.Body = append(p.Body[:at:at], append([]lang.Stmt{ins}, p.Body[at:]...)...)
		return lang.Format(p, lang.PrintOptions{}), "full"
	default: // delete a top-level simple unlabeled statement
		var idxs []int
		for i, s := range p.Body {
			switch s.(type) {
			case *lang.AssignStmt, *lang.ReadStmt, *lang.WriteStmt:
				idxs = append(idxs, i)
			}
		}
		if len(idxs) == 0 || len(p.Body) < 3 {
			return src, ""
		}
		at := idxs[rng.Intn(len(idxs))]
		p.Body = append(p.Body[:at:at], p.Body[at+1:]...)
		return lang.Format(p, lang.PrintOptions{}), "full"
	}
}

func TestReanalyzePropertyByteIdentity(t *testing.T) {
	corpora := []struct {
		name string
		gen  func(progen.Config) *lang.Program
	}{
		{"structured", progen.Structured},
		{"unstructured", progen.Unstructured},
	}
	seeds := 120
	edits := 3
	if testing.Short() {
		seeds = 25
	}
	outcomes := map[string]int{}
	for _, corpus := range corpora {
		t.Run(corpus.name, func(t *testing.T) {
			for seed := 0; seed < seeds; seed++ {
				rng := rand.New(rand.NewSource(int64(1000*seeds + seed)))
				src := lang.Format(corpus.gen(progen.Config{Seed: int64(seed), Stmts: 40}), lang.PrintOptions{})
				cur, err := Analyze(lang.MustParse(src))
				if err != nil {
					t.Fatalf("%s seed %d: analyze: %v", corpus.name, seed, err)
				}
				for step := 0; step < edits; step++ {
					// Warm the donor's condensation so patched edits
					// exercise Condensation.Patched, not just lazy rebuild.
					if _, err := cur.SliceAll(writeCriteria(cur.Prog, 2)); err != nil {
						t.Fatalf("%s seed %d step %d: warm SliceAll: %v", corpus.name, seed, step, err)
					}
					newSrc, wantTier := mutate(rng, src)
					inc, stats, err := Reanalyze(cur, newSrc)
					if err != nil {
						t.Fatalf("%s seed %d step %d: Reanalyze: %v\nsource:\n%s", corpus.name, seed, step, err, newSrc)
					}
					if wantTier != "" && stats.Outcome != wantTier {
						t.Fatalf("%s seed %d step %d: outcome %q (fallback %q), want %q\nold:\n%s\nnew:\n%s",
							corpus.name, seed, step, stats.Outcome, stats.Fallback, wantTier, src, newSrc)
					}
					outcomes[stats.Outcome]++
					cold, err := Analyze(lang.MustParse(newSrc))
					if err != nil {
						t.Fatalf("%s seed %d step %d: cold analyze: %v", corpus.name, seed, step, err)
					}
					ctxt := fmt.Sprintf("%s seed %d step %d (%s)", corpus.name, seed, step, stats.Outcome)
					requireSameSlices(t, ctxt, inc, cold, writeCriteria(inc.Prog, 3))
					src, cur = newSrc, inc
				}
			}
		})
	}
	for _, tier := range []string{"patched", "partial", "full"} {
		if outcomes[tier] == 0 {
			t.Errorf("no random edit landed in the %q tier (distribution: %v)", tier, outcomes)
		}
	}
}
