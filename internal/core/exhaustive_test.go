package core

import (
	"reflect"
	"testing"

	"jumpslice/internal/interp"
	"jumpslice/internal/lang"
	"jumpslice/internal/paper"
)

// TestExhaustiveCriteriaOnCorpus slices every corpus figure on every
// (variable, statement line) pair — not just the paper's criterion —
// and validates each Figure 7 slice semantically. This is the widest
// single net in the suite: for Figure 3-a alone it checks 15 lines ×
// 3 variables.
func TestExhaustiveCriteriaOnCorpus(t *testing.T) {
	for _, f := range paper.All() {
		f := f
		t.Run(f.Name, func(t *testing.T) {
			prog := f.Parse()
			a := MustAnalyze(prog)
			vars := lang.VarNames(prog)
			lines := map[int]bool{}
			for _, s := range lang.Statements(prog) {
				lines[s.Pos().Line] = true
			}
			checked := 0
			for line := range lines {
				for _, v := range vars {
					c := Criterion{Var: v, Line: line}
					s, err := a.Agrawal(c)
					if err != nil {
						// Criteria with no reaching definition and no
						// use at the line are legitimately rejected.
						continue
					}
					checked++
					sliced := s.Materialize()
					for _, opts := range figureRuns(f) {
						wantOpts := opts
						wantOpts.ObserveVar, wantOpts.ObserveLine = v, line
						wantRes, err := interp.Run(prog, wantOpts)
						if err != nil {
							t.Fatal(err)
						}
						gotOpts := opts
						gotOpts.ObserveVar, gotOpts.ObserveLine = v, line
						gotRes, err := interp.Run(sliced, gotOpts)
						if err != nil {
							t.Fatalf("%v: slice run: %v\n%s", c, err, s.Format())
						}
						if !reflect.DeepEqual(gotRes.Observations, wantRes.Observations) {
							t.Errorf("%v: slice observes %v, original %v\n%s",
								c, gotRes.Observations, wantRes.Observations, s.Format())
						}
					}
				}
			}
			if checked == 0 {
				t.Fatal("no criteria checked")
			}
			t.Logf("validated %d criteria", checked)
		})
	}
}

// TestExhaustiveStructuredAlgorithmsOnCorpus does the same for the
// Figure 12 and Figure 13 algorithms on the structured figures.
func TestExhaustiveStructuredAlgorithmsOnCorpus(t *testing.T) {
	for _, f := range paper.All() {
		if !f.Structured {
			continue
		}
		f := f
		t.Run(f.Name, func(t *testing.T) {
			prog := f.Parse()
			a := MustAnalyze(prog)
			vars := lang.VarNames(prog)
			lines := map[int]bool{}
			for _, s := range lang.Statements(prog) {
				lines[s.Pos().Line] = true
			}
			for line := range lines {
				for _, v := range vars {
					c := Criterion{Var: v, Line: line}
					general, err := a.Agrawal(c)
					if err != nil {
						continue
					}
					simplified, err := a.AgrawalStructured(c)
					if err != nil {
						t.Fatalf("%v: %v", c, err)
					}
					if !reflect.DeepEqual(general.StatementNodes(), simplified.StatementNodes()) {
						t.Errorf("%v: Figure 7 %v != Figure 12 %v",
							c, general.Lines(), simplified.Lines())
					}
					cons, err := a.AgrawalConservative(c)
					if err != nil {
						t.Fatalf("%v: %v", c, err)
					}
					for _, id := range simplified.StatementNodes() {
						if !cons.Has(id) {
							t.Errorf("%v: Figure 13 missing Figure 12 node %d", c, id)
						}
					}
				}
			}
		})
	}
}
