package core

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"jumpslice/internal/bits"
	"jumpslice/internal/cfg"
	"jumpslice/internal/lang"
	"jumpslice/internal/obs"
	"jumpslice/internal/sdg"
)

// This file is the interprocedural layer: a program with procedure
// declarations is analyzed per procedure with the existing machinery
// (each body gets its own flowgraph, dominators, dependence graphs,
// and lexical successor tree — jump statements never cross a
// procedure boundary, so all of the paper's Figure 7 reasoning stays
// per-procedure), the per-procedure results are stitched into a
// system dependence graph (internal/sdg), and slices are computed
// with the Horwitz–Reps–Binkley two-pass algorithm over summary
// edges, followed by the Figure 7 jump repair run inside each
// procedure against its local projection of the slice.

// ProcUnit is the per-procedure analysis of one program-set member.
type ProcUnit struct {
	// Index is the unit's position in ProgramSet.Units and its
	// procedure index in the SDG.
	Index int
	// Name is the procedure name; "" for main.
	Name string
	// Decl is the source declaration; nil for main.
	Decl *lang.ProcDecl
	// Sub is the full single-procedure analysis of the body: the
	// procedure's statements under a synthetic Program, so every
	// intraprocedural structure (CFG, PDT, CDG, RD, PDG, LST) and
	// every intraprocedural algorithm applies unchanged.
	Sub *Analysis
}

// ProgramSet is the interprocedural analogue of Analysis: the
// per-procedure analyses of a multi-procedure program plus their
// system dependence graph. Build it once with AnalyzeProgramSet, then
// compute any number of slices from it; the SDG's summary edges are
// computed lazily on the first slice and cached, so repeat slices of
// the same set skip the interprocedural fixpoint entirely.
type ProgramSet struct {
	Prog *lang.Program
	// Units holds the procedures in declaration order, then main
	// last; indices match SDG procedure indices.
	Units []*ProcUnit
	// SDG is the system dependence graph over the units.
	SDG *sdg.Graph

	rec obs.Recorder
	tr  *obs.Tracer
	sm  sdgMetrics

	summaryOnce sync.Once
	summaryErr  error
}

// sdgMetrics is the ProgramSet's pre-resolved instrument set.
type sdgMetrics struct {
	slices        *obs.Counter
	summaryEdges  *obs.Counter
	summaryRounds *obs.Counter
	jumpsAdmitted *obs.Counter
}

func (m *sdgMetrics) resolve(rec obs.Recorder) {
	m.slices = rec.Counter("sdg.slices")
	m.summaryEdges = rec.Counter("sdg.summary_edges")
	m.summaryRounds = rec.Counter("sdg.summary_rounds")
	m.jumpsAdmitted = rec.Counter("sdg.jumps_admitted")
}

// AnalyzeProgramSet analyzes a program that may declare procedures.
// Programs without procedures are legal — the set then has a single
// unit (main) and SliceInterproc degenerates to the intraprocedural
// Agrawal algorithm, producing the identical slice.
func AnalyzeProgramSet(prog *lang.Program) (*ProgramSet, error) {
	return AnalyzeProgramSetObservedContext(context.Background(), prog, obs.Nop, nil)
}

// AnalyzeProgramSetObserved is AnalyzeProgramSet with a recorder and
// tracer attached; both are passed through to every per-procedure
// analysis, so the usual phase.analyze.* spans are reported once per
// unit.
func AnalyzeProgramSetObserved(prog *lang.Program, rec obs.Recorder, tr *obs.Tracer) (*ProgramSet, error) {
	return AnalyzeProgramSetObservedContext(context.Background(), prog, rec, tr)
}

// AnalyzeProgramSetObservedContext is AnalyzeProgramSetObserved bound
// to a request context, which cancels both the per-procedure analyses
// and every later closure walk on the set (including summary
// computation).
func AnalyzeProgramSetObservedContext(ctx context.Context, prog *lang.Program, rec obs.Recorder, tr *obs.Tracer) (*ProgramSet, error) {
	rec = obs.OrNop(rec)
	sp := rec.StartSpan("phase.analyze.sdg")
	ts := tr.StartSpan("phase.analyze.sdg")
	defer func() { ts.End(); sp.End() }()

	ps := &ProgramSet{Prog: prog, rec: rec, tr: tr}
	ps.sm.resolve(rec)
	analyzeBody := func(name string, decl *lang.ProcDecl, body []lang.Stmt, labels map[string]*lang.LabeledStmt) error {
		synthetic := &lang.Program{Body: body, Labels: labels}
		sub, err := AnalyzeObservedContext(ctx, synthetic, rec, tr)
		if err != nil {
			if name == "" {
				return fmt.Errorf("core: analyzing main: %w", err)
			}
			return fmt.Errorf("core: analyzing proc %s: %w", name, err)
		}
		ps.Units = append(ps.Units, &ProcUnit{
			Index: len(ps.Units),
			Name:  name,
			Decl:  decl,
			Sub:   sub,
		})
		return nil
	}
	for _, d := range prog.Procs {
		if err := analyzeBody(d.Name, d, d.Body, d.Labels); err != nil {
			return nil, err
		}
	}
	if err := analyzeBody("", nil, prog.Body, prog.Labels); err != nil {
		return nil, err
	}

	infos := make([]*sdg.ProcInfo, len(ps.Units))
	for i, u := range ps.Units {
		info := &sdg.ProcInfo{
			Name:  u.Name,
			CFG:   u.Sub.CFG,
			CDG:   u.Sub.CDG,
			RD:    u.Sub.RD,
			Extra: map[int][]int{},
		}
		if u.Decl != nil {
			info.Params = u.Decl.Params
			info.DeclLine = u.Decl.P.Line
		}
		// The two slice invariants the engines encode as extra
		// dependence edges (see batchEngine): closures over the SDG
		// are normalized by construction.
		for _, cj := range u.Sub.condJumps {
			info.Extra[cj.pred] = append(info.Extra[cj.pred], cj.jump)
		}
		for _, id := range u.Sub.switchNodes {
			info.Extra[id] = append(info.Extra[id], u.Sub.enclosingSwitch[id])
		}
		infos[i] = info
	}
	g, err := sdg.Build(infos)
	if err != nil {
		return nil, err
	}
	ps.SDG = g
	return ps, nil
}

// MainUnit returns the unit of the top-level statements.
func (ps *ProgramSet) MainUnit() *ProcUnit { return ps.Units[len(ps.Units)-1] }

// Unit returns the unit of the named procedure ("" for main).
func (ps *ProgramSet) Unit(name string) *ProcUnit {
	for _, u := range ps.Units {
		if u.Name == name {
			return u
		}
	}
	return nil
}

// UnitAtLine returns the unit whose body contains the source line.
func (ps *ProgramSet) UnitAtLine(line int) *ProcUnit {
	for _, u := range ps.Units {
		if len(u.Sub.CFG.NodesAtLine(line)) > 0 {
			return u
		}
	}
	return nil
}

// EnsureSummaries runs the HRB summary-edge worklist if it has not
// run yet; SliceInterproc calls it implicitly, so the only reason to
// call it directly is to front-load the cost (or measure it).
func (ps *ProgramSet) EnsureSummaries() error {
	ps.summaryOnce.Do(func() {
		sp := ps.rec.StartSpan("phase.sdg.summaries")
		ts := ps.tr.StartSpan("phase.sdg.summaries")
		defer func() { ts.End(); sp.End() }()
		edges, rounds, err := ps.SDG.ComputeSummaries(ps.MainUnit().Sub.cancelf)
		ps.sm.summaryEdges.Add(int64(edges))
		ps.sm.summaryRounds.Add(int64(rounds))
		ps.summaryErr = err
	})
	return ps.summaryErr
}

// InterSlice is the result of an interprocedural slice: the global
// vertex sets of the two HRB passes plus, per unit, an ordinary Slice
// over the unit's flowgraph (the local projection, with the jumps the
// per-procedure repair admitted and the unit's relabeled gotos).
type InterSlice struct {
	Set       *ProgramSet
	Criterion Criterion
	Algorithm string
	// CriterionProc is the index of the unit owning the criterion
	// line.
	CriterionProc int
	// V1 and V2 are the SDG vertex sets after pass one (ascend only)
	// and pass two (descend only, seeded from V1); V2 is the slice.
	V1, V2 *bits.Set
	// PerProc holds one Slice per unit, indexed like Units.
	PerProc []*Slice
	// JumpsAdded is the total number of jumps the per-procedure
	// repair admitted across all units; Traversals the total Figure 7
	// traversal count; Rounds the number of outer repair rounds over
	// all units (counting the final unproductive one).
	JumpsAdded int
	Traversals int
	Rounds     int
}

// SliceInterproc computes the HRB two-pass backward slice for the
// criterion, then repairs jump statements per procedure with the
// paper's Figure 7 rule, iterating to a global fixpoint (a jump
// admitted in one procedure grows the slice across call boundaries,
// which can expose repair work in another).
func (ps *ProgramSet) SliceInterproc(c Criterion) (*InterSlice, error) {
	if err := ps.EnsureSummaries(); err != nil {
		return nil, err
	}
	u := ps.UnitAtLine(c.Line)
	if u == nil {
		return nil, fmt.Errorf("core: no statement at line %d", c.Line)
	}
	seeds, err := u.Sub.resolveCriterion(c)
	if err != nil {
		return nil, err
	}
	g := ps.SDG
	cancel := u.Sub.cancelf
	vseeds := make([]int, 0, len(seeds)+1)
	for _, id := range seeds {
		vseeds = append(vseeds, g.StmtVert(u.Index, id))
		// A criterion resolving to a call node means the variable is
		// defined by the call's copy-out or used by its arguments;
		// seed the parameter vertices carrying it, or the closure
		// would stop at the call statement without entering the
		// callee.
		if u.Sub.CFG.Nodes[id].Kind == cfg.KindCall {
			if aov, ok := g.ActualOutVertByVar(u.Index, id, c.Var); ok {
				vseeds = append(vseeds, aov)
			}
			vseeds = append(vseeds, g.ActualInVertsMentioning(u.Index, id, c.Var)...)
		}
	}
	// The dummy entry is in every slice by construction (covers
	// criteria in dead code), as in conventionalWith.
	vseeds = append(vseeds, g.EntryVert(u.Index))

	v1, err := g.Closure(vseeds, sdg.PassOne, cancel)
	if err != nil {
		return nil, err
	}
	v2, err := g.Closure(v1.Members(), sdg.PassTwo, cancel)
	if err != nil {
		return nil, err
	}

	s := &InterSlice{
		Set:           ps,
		Criterion:     c,
		Algorithm:     "sdg",
		CriterionProc: u.Index,
		V1:            v1,
		V2:            v2,
		PerProc:       make([]*Slice, len(ps.Units)),
	}

	// Per-procedure jump repair to a global fixpoint. Growing the
	// slice while repairing unit A can add vertices in unit B (the
	// closure of an admitted jump crosses call boundaries), so units
	// are re-repaired until a full round admits nothing.
	jumpsByUnit := make([][]int, len(ps.Units))
	rulesByUnit := make([][]JumpRule, len(ps.Units))
	totalNodes := 0
	for _, un := range ps.Units {
		totalNodes += un.Sub.CFG.NumNodes()
	}
	for {
		s.Rounds++
		changed := false
		for _, un := range ps.Units {
			// A unit the slice does not touch cannot admit a jump:
			// with an empty local projection every jump's nearest
			// postdominator and lexical successor in the slice are
			// both Exit, so the Figure 7 sweep is a no-op. Skipping
			// it keeps repair cost proportional to the slice, not the
			// program set.
			if !procTouched(ps.SDG, s.V2, un.Index) {
				continue
			}
			local := s.localSet(un)
			jumps, rules, trav, err := un.Sub.repairJumps(local, un.Sub.jumpsPDT, funcEngine{s: s, u: un})
			s.Traversals += trav
			if err != nil {
				return nil, fmt.Errorf("core: sdg repair in %s: %w", unitLabel(un), err)
			}
			if len(jumps) > 0 {
				jumpsByUnit[un.Index] = append(jumpsByUnit[un.Index], jumps...)
				rulesByUnit[un.Index] = append(rulesByUnit[un.Index], rules...)
				s.JumpsAdded += len(jumps)
				changed = true
			}
		}
		if !changed {
			break
		}
		if s.Rounds > totalNodes+1 {
			// Each productive round admits at least one jump, and
			// admissions are bounded by the global jump count; this
			// guard only trips on an implementation bug.
			return nil, fmt.Errorf("core: sdg jump repair failed to converge after %d rounds", s.Rounds)
		}
	}

	for _, un := range ps.Units {
		local := bits.New(un.Sub.CFG.NumNodes())
		if procTouched(ps.SDG, s.V2, un.Index) {
			local = s.localSet(un)
		}
		s.PerProc[un.Index] = &Slice{
			Analysis:   un.Sub,
			Criterion:  c,
			Algorithm:  "sdg",
			Nodes:      local,
			JumpsAdded: jumpsByUnit[un.Index],
			JumpRules:  rulesByUnit[un.Index],
			Relabeled:  un.Sub.retargetLabels(local),
		}
	}
	ps.sm.slices.Add(1)
	ps.sm.jumpsAdmitted.Add(int64(s.JumpsAdded))
	if ps.tr != nil {
		ps.tr.SliceDone("sdg", v2.Len())
	}
	return s, nil
}

func unitLabel(u *ProcUnit) string {
	if u.Name == "" {
		return "main"
	}
	return "proc " + u.Name
}

// localSet projects the global vertex set onto a unit's flowgraph:
// the local node IDs whose statement vertex is in the slice.
func (s *InterSlice) localSet(u *ProcUnit) *bits.Set {
	g := s.Set.SDG
	set := bits.New(u.Sub.CFG.NumNodes())
	for _, n := range u.Sub.CFG.Nodes {
		if s.V2.Has(g.StmtVert(u.Index, n.ID)) {
			set.Add(n.ID)
		}
	}
	return set
}

// procTouched reports whether any of the unit's vertices (statement,
// formal, or actual) is in the given set.
func procTouched(g *sdg.Graph, set *bits.Set, pi int) bool {
	lo, hi := g.ProcVertRange(pi)
	next := set.NextSet(lo)
	return next >= 0 && next < hi
}

// funcEngine is the depEngine the per-procedure Figure 7 repair runs
// against: closures are global SDG closures (so an admitted jump's
// dependences cross call boundaries exactly like criterion
// dependences do), projected back onto the unit's flowgraph.
//
// The HRB pass discipline is preserved: a jump admitted in a
// procedure the first pass touched joins the first-pass set and its
// closure may ascend to callers (then cascades down via pass two); a
// jump admitted in a procedure only reached by descent joins the
// second pass and never re-ascends.
//
// Closures over the SDG carry the invariant edges, so they are
// normalized by construction.
type funcEngine struct {
	s *InterSlice
	u *ProcUnit
}

func (e funcEngine) closuresNormalized() bool { return true }

func (e funcEngine) backwardClosure(seeds []int) (*bits.Set, error) {
	set := bits.New(e.u.Sub.CFG.NumNodes())
	for _, v := range seeds {
		if _, err := e.grow(set, v); err != nil {
			return nil, err
		}
	}
	return set, nil
}

func (e funcEngine) grow(set *bits.Set, seed int) (bool, error) {
	s, g := e.s, e.s.Set.SDG
	cancel := e.u.Sub.cancelf
	gv := g.StmtVert(e.u.Index, seed)
	if procTouched(g, s.V1, e.u.Index) {
		// First-pass territory: grow V1, then cascade the new
		// first-pass vertices down through pass two.
		before := s.V1.Clone()
		if _, err := g.GrowInto(s.V1, []int{gv}, sdg.PassOne, cancel); err != nil {
			return false, err
		}
		delta := s.V1.Clone()
		delta.DifferenceWith(before)
		// Vertices already in V2 are pass-two-closed there, so
		// GrowInto skipping them as seeds is exact.
		if _, err := g.GrowInto(s.V2, delta.Members(), sdg.PassTwo, cancel); err != nil {
			return false, err
		}
	} else {
		if _, err := g.GrowInto(s.V2, []int{gv}, sdg.PassTwo, cancel); err != nil {
			return false, err
		}
	}
	// Project the grown global slice back onto this unit's node set
	// (the set repairJumps is iterating).
	grew := false
	for _, n := range e.u.Sub.CFG.Nodes {
		if !set.Has(n.ID) && s.V2.Has(g.StmtVert(e.u.Index, n.ID)) {
			set.Add(n.ID)
			grew = true
		}
	}
	return grew, nil
}

// Lines returns the sorted union of the per-unit slice lines — the
// paper-figure representation of the interprocedural slice.
func (s *InterSlice) Lines() []int {
	seen := map[int]bool{}
	for _, sl := range s.PerProc {
		for _, l := range sl.Lines() {
			seen[l] = true
		}
	}
	lines := make([]int, 0, len(seen))
	for l := range seen {
		lines = append(lines, l)
	}
	sort.Ints(lines)
	return lines
}

// keptUnits decides which procedure declarations the materialized
// slice must carry: every unit with surviving statements, plus —
// transitively — every procedure still called from a surviving call
// statement (a callee sliced down to nothing must still be declared
// for the surviving call to resolve).
func (s *InterSlice) keptUnits() []bool {
	keep := make([]bool, len(s.Set.Units))
	for i, sl := range s.PerProc {
		keep[i] = len(sl.StatementNodes()) > 0
	}
	keep[len(keep)-1] = true // main is the program body, always emitted
	for changed := true; changed; {
		changed = false
		for i, u := range s.Set.Units {
			if !keep[i] {
				continue
			}
			for _, n := range u.Sub.CFG.Nodes {
				if n.Kind != cfg.KindCall || !s.PerProc[i].Nodes.Has(n.ID) {
					continue
				}
				if qi, ok := s.Set.SDG.CalleeOf(i, n.ID); ok && !keep[qi] {
					keep[qi] = true
					changed = true
				}
			}
		}
	}
	return keep
}

// Materialize projects the slice back onto the program text: each
// kept procedure is materialized from its local projection with the
// intraprocedural machinery (including per-procedure label
// retargeting), and reassembled around the materialized main body.
func (s *InterSlice) Materialize() *lang.Program {
	keep := s.keptUnits()
	out := &lang.Program{}
	for i, u := range s.Set.Units {
		if u.Decl == nil || !keep[i] {
			continue
		}
		sub := s.PerProc[i].Materialize()
		out.Procs = append(out.Procs, &lang.ProcDecl{
			P:      u.Decl.P,
			Name:   u.Decl.Name,
			Params: u.Decl.Params,
			Body:   sub.Body,
			Labels: sub.Labels,
		})
	}
	mainSub := s.PerProc[len(s.PerProc)-1].Materialize()
	out.Body = mainSub.Body
	out.Labels = mainSub.Labels
	return out
}

// Format pretty-prints the materialized slice with original line
// numbers, procedures first, matching the paper's figure style.
func (s *InterSlice) Format() string {
	return lang.Format(s.Materialize(), lang.PrintOptions{LineNumbers: true})
}

// EdgeReasons maps each slice line to the interprocedural evidence
// that pulled it in: for every slice vertex depending on a vertex at
// that line through a call, param-in, param-out, or summary edge, a
// reason string naming the edge kind and the depending vertex.
// Intraprocedural kinds (control, data, invariant) are omitted — the
// per-procedure explain machinery covers those.
func (s *InterSlice) EdgeReasons() map[int][]string {
	g := s.Set.SDG
	seen := map[int]map[string]bool{}
	for v := s.V2.NextSet(0); v >= 0; v = s.V2.NextSet(v + 1) {
		for _, d := range g.Deps(v) {
			switch d.Kind {
			case sdg.EdgeCall, sdg.EdgeParamIn, sdg.EdgeParamOut, sdg.EdgeSummary:
			default:
				continue
			}
			if !s.V2.Has(d.To) {
				continue
			}
			line := g.VertLine(d.To)
			if line <= 0 {
				continue
			}
			reason := fmt.Sprintf("%s edge from %s", d.Kind, g.VertString(v))
			if seen[line] == nil {
				seen[line] = map[string]bool{}
			}
			seen[line][reason] = true
		}
	}
	out := make(map[int][]string, len(seen))
	for line, rs := range seen {
		list := make([]string, 0, len(rs))
		for r := range rs {
			list = append(list, r)
		}
		sort.Strings(list)
		out[line] = list
	}
	return out
}
