package core

import (
	"jumpslice/internal/bits"
	"jumpslice/internal/cfg"
	"jumpslice/internal/lang"
)

// Conventional computes the conventional (jump-unaware) slice: the
// backward transitive closure of data and control dependence from the
// criterion, plus the paper's conditional-jump adaptation — when the
// predicate of a conditional jump statement such as "if (e) goto L" is
// in the slice, the associated jump is included too, "for the
// predicate will not serve any purpose in the slice without the
// accompanying jump" (Section 3).
//
// On programs without jump statements this is the classic Ottenstein &
// Ottenstein PDG slice and is correct; on programs with jumps it is
// the baseline the paper's Figures 3-b and 5-b show to be wrong.
func (a *Analysis) Conventional(c Criterion) (*Slice, error) {
	s, err := a.conventionalWith(c, a.engine())
	if err != nil {
		return nil, err
	}
	a.recordSlice("conventional", s.Nodes)
	return s, nil
}

// conventionalWith is Conventional parameterized by the closure
// engine, shared by the single-criterion and batch entry points.
func (a *Analysis) conventionalWith(c Criterion, eng depEngine) (*Slice, error) {
	seeds, err := a.resolveCriterion(c)
	if err != nil {
		return nil, err
	}
	set, err := eng.backwardClosure(seeds)
	if err != nil {
		return nil, err
	}
	// The dummy entry predicate (the paper's node 0) is in every
	// slice by construction. The closure reaches it through any live
	// statement's control dependence chain; seeding it explicitly
	// also covers criteria in dead code, whose statements have no
	// dependence path to anything.
	set.Add(a.CFG.Entry.ID)
	if err := a.normalizeSlice(set, eng); err != nil {
		return nil, err
	}
	return &Slice{
		Analysis:  a,
		Criterion: c,
		Algorithm: "conventional",
		Nodes:     set,
		Relabeled: a.retargetLabels(set),
	}, nil
}

// normalizeSlice closes a slice set under the two invariants every
// slice of this package maintains, iterating to a joint fixpoint:
//
//  1. The conditional-jump adaptation (Section 3): when the predicate
//     of a conditional jump statement such as "if (e) goto L" is in
//     the slice, the associated jump is included too (with the
//     closure of its dependences). A closure can pull in further
//     conditional-jump predicates — the paper's Figure 8, where
//     including jumps 11 and 13 pulls in predicate 9, whose own goto
//     must then be included.
//  2. The switch-enclosure invariant: a statement inside a switch
//     brings the switch tag (with its dependence closure). A case
//     body statement that postdominates the dispatch — fall-through
//     into a default, say — is not control dependent on the switch,
//     so the dependence closure alone can strand it outside its
//     enclosing construct; a slice is a projection of the program, so
//     that must not happen (and the lexical-successor test of Figure
//     7 implicitly assumes it does not).
//
// Both passes run over worklists precomputed at Analyze time (the
// conditional-jump pairs and the switch-enclosed nodes) rather than
// scanning every CFG node; the worklists preserve node order, so the
// fixpoint reached is identical.
//
// Engines whose closures bake the invariants in as dependence edges
// (the batch condensation) are already at the fixpoint, so the passes
// are skipped outright.
func (a *Analysis) normalizeSlice(set *bits.Set, eng depEngine) error {
	if eng.closuresNormalized() {
		return nil
	}
	for {
		if err := a.checkCancel("normalize"); err != nil {
			return err
		}
		changed, err := a.condJumpAdaptationOnce(set, eng)
		if err != nil {
			return err
		}
		swChanged, err := a.enforceSwitchEnclosureOnce(set, eng)
		if err != nil {
			return err
		}
		if !changed && !swChanged {
			return nil
		}
	}
}

// condJumpAdaptationOnce performs one pass of invariant 1, reporting
// whether anything was added.
func (a *Analysis) condJumpAdaptationOnce(set *bits.Set, eng depEngine) (bool, error) {
	changed := false
	for _, cj := range a.condJumps {
		if set.Has(cj.pred) && !set.Has(cj.jump) {
			if _, err := eng.grow(set, cj.jump); err != nil {
				return false, err
			}
			changed = true
		}
	}
	return changed, nil
}

// enforceSwitchEnclosureOnce performs one pass of invariant 2,
// reporting whether anything was added.
func (a *Analysis) enforceSwitchEnclosureOnce(set *bits.Set, eng depEngine) (bool, error) {
	changed := false
	for _, id := range a.switchNodes {
		if !set.Has(id) {
			continue
		}
		if sw := a.enclosingSwitch[id]; !set.Has(sw) {
			if _, err := eng.grow(set, sw); err != nil {
				return false, err
			}
			changed = true
		}
	}
	return changed, nil
}

// conditionalJumpOf returns the jump node of a conditional jump
// statement: an if with no else whose then-branch consists of exactly
// one jump statement. Returns nil for ordinary predicates.
func (a *Analysis) conditionalJumpOf(n *cfg.Node) *cfg.Node {
	ifStmt, ok := lang.Unlabel(n.Stmt).(*lang.IfStmt)
	if !ok || ifStmt.Else != nil {
		return nil
	}
	body := lang.Unlabel(ifStmt.Then)
	for {
		blk, ok := body.(*lang.BlockStmt)
		if !ok {
			break
		}
		if len(blk.List) != 1 {
			return nil
		}
		body = lang.Unlabel(blk.List[0])
	}
	if !lang.IsJump(body) {
		return nil
	}
	return a.CFG.NodeFor(body)
}

// RetargetLabels exposes the label re-association step to baseline
// algorithms that produce their own slice sets.
func (a *Analysis) RetargetLabels(set *bits.Set) map[string]int {
	return a.retargetLabels(set)
}

// NormalizeSlice exposes the slice invariants (conditional-jump
// adaptation and switch enclosure) to baseline algorithms that build
// their own slice sets. The error is non-nil only when the Analysis's
// context was canceled mid-normalization.
func (a *Analysis) NormalizeSlice(set *bits.Set) error {
	return a.normalizeSlice(set, a.engine())
}

// retargetLabels applies the paper's final step: "For each goto
// statement, Goto L, in Slice, if the statement labeled L is not in
// Slice then associate the label L with its nearest postdominator in
// Slice." The returned map carries label → node ID (Exit means the
// label lands after the last statement).
func (a *Analysis) retargetLabels(set *bits.Set) map[string]int {
	out := map[string]int{}
	for _, n := range a.gotoNodes {
		if !set.Has(n.ID) {
			continue
		}
		label := lang.Unlabel(n.Stmt).(*lang.GotoStmt).Label
		target := a.CFG.LabelNode[label]
		if target == nil || set.Has(target.ID) {
			continue
		}
		out[label] = a.nearestPostdomInSlice(target.ID, set)
	}
	return out
}
