package core

import (
	"context"

	"jumpslice/internal/obs"
)

// Rebind returns a view of the Analysis bound to a different request:
// a shallow copy sharing every derived structure — flowgraph, trees,
// dependence graphs, precomputed worklists, and the lazily-built
// batch condensation with its memoized closures — but carrying its
// own context, recorder and tracer. It is the primitive the analysis
// cache is built on: one Analysis is computed once, cached in a
// detached form (Rebind(nil, reg, nil)), and each request that hits
// the cache gets a view wired to its own deadline and trace journal.
//
// Rebind is cheap (one struct copy, no graph work) and safe to call
// concurrently; the views may slice concurrently because everything
// they share is immutable after Analyze except the batch condensation,
// which synchronizes internally. A nil ctx (or one that can never be
// canceled) disables cancellation checks on the view; a nil rec means
// obs.Nop; a nil tr disables tracing.
//
// Whichever view first triggers the batch condensation instruments it
// with that view's recorder and tracer for its lifetime — views built
// from one daemon share a registry, so in practice this only pins
// per-component cache events to the building request's trace.
func (a *Analysis) Rebind(ctx context.Context, rec obs.Recorder, tr *obs.Tracer) *Analysis {
	cp := *a // legal: Analysis holds its lock-bearing batch state by pointer
	cp.rec = obs.OrNop(rec)
	cp.m.resolve(cp.rec)
	cp.tr = tr
	cp.ctx, cp.cancelf = nil, nil
	if ctx != nil {
		cp.bindContext(ctx)
	}
	return &cp
}
