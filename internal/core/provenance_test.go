package core_test

import (
	"fmt"
	"strings"
	"testing"

	"jumpslice/internal/core"
	"jumpslice/internal/paper"
	"jumpslice/internal/progen"
)

// checkProvenance asserts the two provenance properties on one slice:
//
//	sound    — every reason's evidence is itself in the slice (the
//	           From node; for jump-rule records, the nearest-PD and
//	           nearest-LS nodes, Exit standing for "end of program"),
//	complete — every statement in the slice (and Entry) carries at
//	           least one reason, criterion seeds carry a criterion
//	           record, and every rule-admitted jump carries its
//	           jump-rule record.
func checkProvenance(t *testing.T, label string, a *core.Analysis, s *core.Slice) {
	t.Helper()
	p, err := s.Explain()
	if err != nil {
		t.Fatalf("%s: Explain: %v", label, err)
	}
	exit := a.CFG.Exit.ID
	inOrEnd := func(id int) bool { return id == exit || s.Nodes.Has(id) }

	// Completeness: every member is explained.
	for _, id := range s.StatementNodes() {
		if len(p.Reasons[id]) == 0 {
			t.Errorf("%s: node %d (line %d) in slice with no reason",
				label, id, a.CFG.Nodes[id].Line)
		}
	}
	if entry := a.CFG.Entry.ID; s.Nodes.Has(entry) && len(p.Reasons[entry]) == 0 {
		t.Errorf("%s: entry node has no reason", label)
	}

	// Soundness: reasons only reference in-slice evidence, and no
	// reason is attached to a node outside the slice.
	for id, rs := range p.Reasons {
		if !s.Nodes.Has(id) {
			t.Errorf("%s: node %d has reasons but is not in the slice", label, id)
		}
		for _, r := range rs {
			if r.From >= 0 && !s.Nodes.Has(r.From) {
				t.Errorf("%s: node %d reason %v: evidence %d not in slice", label, id, r.Kind, r.From)
			}
			if r.Kind == core.ReasonJumpRule {
				if r.NearestPD == r.NearestLS {
					t.Errorf("%s: node %d: jump-rule with equal PD/LS %d", label, id, r.NearestPD)
				}
				if !inOrEnd(r.NearestPD) || !inOrEnd(r.NearestLS) {
					t.Errorf("%s: node %d: jump-rule evidence PD=%d LS=%d not in slice",
						label, id, r.NearestPD, r.NearestLS)
				}
			}
		}
	}

	// Criterion seeds are marked as such.
	seeds, err := a.CriterionNodes(s.Criterion)
	if err != nil {
		t.Fatalf("%s: CriterionNodes: %v", label, err)
	}
	for _, v := range seeds {
		if !s.Nodes.Has(v) {
			continue
		}
		found := false
		for _, r := range p.Reasons[v] {
			if r.Kind == core.ReasonCriterion {
				found = true
			}
		}
		if !found {
			t.Errorf("%s: seed node %d lacks a criterion reason", label, v)
		}
	}

	// Every rule-admitted jump carries its admission evidence.
	if len(s.JumpRules) == len(s.JumpsAdded) {
		for _, j := range s.JumpsAdded {
			found := false
			for _, r := range p.Reasons[j] {
				if r.Kind == core.ReasonJumpRule {
					found = true
				}
			}
			if !found {
				t.Errorf("%s: admitted jump %d lacks a jump-rule reason", label, j)
			}
		}
	}
}

// TestPropertyProvenanceSoundAndComplete checks provenance on the
// Figure 7 slice of every criterion across 240 generated programs
// (120 structured + 120 unstructured), plus the conventional and
// Figure 12/13 slices on the structured corpus.
func TestPropertyProvenanceSoundAndComplete(t *testing.T) {
	forEachCase(t, progen.Structured, 120, func(t *testing.T, seed int64, a *core.Analysis, c core.Criterion) {
		s, err := a.Agrawal(c)
		if err != nil {
			t.Fatalf("structured seed %d: %v", seed, err)
		}
		checkProvenance(t, labelFor("structured/agrawal", seed, c), a, s)
		conv, err := a.Conventional(c)
		if err != nil {
			t.Fatalf("structured seed %d: %v", seed, err)
		}
		checkProvenance(t, labelFor("structured/conventional", seed, c), a, conv)
		if a.Structured() {
			fig12, err := a.AgrawalStructured(c)
			if err != nil {
				t.Fatalf("structured seed %d: %v", seed, err)
			}
			checkProvenance(t, labelFor("structured/fig12", seed, c), a, fig12)
			fig13, err := a.AgrawalConservative(c)
			if err != nil {
				t.Fatalf("structured seed %d: %v", seed, err)
			}
			checkProvenance(t, labelFor("structured/fig13", seed, c), a, fig13)
		}
	})
	forEachCase(t, progen.Unstructured, 120, func(t *testing.T, seed int64, a *core.Analysis, c core.Criterion) {
		s, err := a.Agrawal(c)
		if err != nil {
			t.Fatalf("unstructured seed %d: %v", seed, err)
		}
		checkProvenance(t, labelFor("unstructured/agrawal", seed, c), a, s)
	})
}

func labelFor(prefix string, seed int64, c core.Criterion) string {
	return fmt.Sprintf("%s seed %d %s", prefix, seed, c)
}

// TestExplainFigure5WorkedExample pins the jump-rule evidence of the
// paper's continue example: the continue on line 7 is admitted
// because its nearest postdominator in the slice is the loop header
// (line 3) while its nearest lexical successor in the slice is line
// 8; the continue on line 11 stays out.
func TestExplainFigure5WorkedExample(t *testing.T) {
	f := paper.Fig5()
	a, err := core.Analyze(f.Parse())
	if err != nil {
		t.Fatal(err)
	}
	s, err := a.Agrawal(core.Criterion{Var: "positives", Line: 14})
	if err != nil {
		t.Fatal(err)
	}
	p, err := s.Explain()
	if err != nil {
		t.Fatal(err)
	}
	listing := p.Listing()
	if !strings.Contains(listing, "  7: continue;  // jump-rule(nearest-PD=3, nearest-LS=8)") {
		t.Errorf("listing lacks the worked-example jump rule:\n%s", listing)
	}
	if strings.Contains(listing, " 11: continue;") {
		t.Errorf("listing includes the rejected continue on line 11:\n%s", listing)
	}
	if got := p.LineReasons()[14]; len(got) != 1 || got[0] != "criterion" {
		t.Errorf("line 14 reasons = %v, want [criterion]", got)
	}
}

// TestExplainDynamicSlice checks provenance over the dynamic slicer's
// repaired slices too (its JumpRules come through RepairJumps).
func TestExplainDynamicSlice(t *testing.T) {
	// Covered via RepairJumps in TestRepairJumpsOnHandBuiltSet for
	// rule capture; here just assert Explain tolerates a slice whose
	// base set was not a conventional closure.
	f := paper.Fig3()
	a, err := core.Analyze(f.Parse())
	if err != nil {
		t.Fatal(err)
	}
	s, err := a.Agrawal(core.Criterion{Var: "positives", Line: 15})
	if err != nil {
		t.Fatal(err)
	}
	checkProvenance(t, "fig3", a, s)
}
