package core

// Footprint estimates the resident bytes of an Analysis — the cost a
// byte-accounted cache charges for keeping it. The estimate is
// structural and deterministic: it is computed from node, edge and
// definition counts, never from allocator state, so two analyses of
// the same program always weigh the same and a cache's byte ledger
// stays reproducible across runs and GOMAXPROCS settings.
//
// The accounting covers the dominant heap consumers:
//
//   - per-node cost: the cfg.Node struct and its slot in every
//     parallel array the Analysis keeps (PDT/LST parent and children
//     arrays, CDG adjacency headers, live/enclosingSwitch, the
//     precomputed worklists), plus the retained AST statement;
//   - per-edge cost: the PDG adjacency lists (data + merged deps) and
//     their CDG/CFG counterparts;
//   - the reaching-definitions bitsets: 2 sets (In/Out) per node, one
//     word per 64 definition sites, plus the definition index.
//
// The lazily-built batch condensation and its memoized component
// closures are intentionally excluded: they are not present on the
// cached single-request path, and charging for them would make an
// entry's cost change after insertion, which a consistent ledger
// cannot allow.
func (a *Analysis) Footprint() int64 {
	n := int64(a.CFG.NumNodes())
	var edges int64
	for v := 0; v < int(n); v++ {
		edges += int64(len(a.PDG.Deps(v)))
		edges += int64(len(a.CFG.Succs(v)))
	}
	defs := int64(len(a.RD.Defs))
	words := (defs + 63) / 64

	const (
		perNode = 320 // cfg.Node + tree/worklist slots + AST statement
		perEdge = 48  // adjacency slice elements across PDG/CDG/CFG
		perDef  = 64  // dataflow.Def index entry
		fixed   = 512 // struct headers of the Analysis and its graphs
	)
	return fixed + n*perNode + edges*perEdge + defs*perDef + 2*n*words*8
}
