package core

import (
	"context"

	"jumpslice/internal/cfg"
	"jumpslice/internal/dataflow"
	"jumpslice/internal/incremental"
	"jumpslice/internal/lang"
	"jumpslice/internal/obs"
	"jumpslice/internal/pdg"
)

// numPhases is the number of construction phases the incremental
// accounting covers: cfg, postdominators, cdg, dataflow, pdg, lst,
// worklists (the phase.analyze.* spans of a cold run).
const numPhases = 7

// IncrStats reports what the incremental engine did for one
// re-analysis.
type IncrStats struct {
	// Outcome names the tier that ran: "patched" (flowgraph shape and
	// every definition survived; only edited dependence rows were
	// recomputed), "partial" (shape survived but a definition changed,
	// so dataflow was re-run), or "full" (a clean cold analysis).
	Outcome string `json:"outcome"`
	// PhasesReused / PhasesRecomputed partition the cold pipeline's
	// phases by whether the previous result was carried over.
	PhasesReused     int `json:"phases_reused"`
	PhasesRecomputed int `json:"phases_recomputed"`
	// CondensationPatched reports that the previous analysis's batch
	// condensation (with its memoized closures) survived via
	// Condensation.Patched instead of being dropped for lazy rebuild.
	CondensationPatched bool `json:"condensation_patched"`
	// Fallback is the reason a full run happened ("" otherwise).
	Fallback string `json:"fallback,omitempty"`
	// Edits is the statement-level edit script of the diff, for
	// reporting.
	Edits []incremental.Edit `json:"edits,omitempty"`
}

// incrMetrics resolves the incremental engine's counters: reused and
// recomputed phase counts, and full-pipeline fallbacks.
type incrMetrics struct {
	reused, recomputed, fallbacks *obs.Counter
}

func resolveIncrMetrics(rec obs.Recorder) incrMetrics {
	return incrMetrics{
		reused:     rec.Counter("incr.reused"),
		recomputed: rec.Counter("incr.recomputed"),
		fallbacks:  rec.Counter("incr.fallbacks"),
	}
}

// Reanalyze re-derives an Analysis for newSrc, reusing whatever the
// previous analysis proves still valid. The result is always exactly
// what Analyze(Parse(newSrc)) would produce — reuse never depends on
// the differ being clever, only on the structural safety checks
// holding — so callers can treat it as a faster Analyze. prev may be
// nil (a plain cold analysis).
func Reanalyze(prev *Analysis, newSrc string) (*Analysis, *IncrStats, error) {
	prog, err := lang.Parse(newSrc)
	if err != nil {
		return nil, nil, err
	}
	return ReanalyzeProgram(context.Background(), prev, prog, nil, nil)
}

// ReanalyzeObservedContext is Reanalyze with the full observability
// surface of AnalyzeObservedContext.
func ReanalyzeObservedContext(ctx context.Context, prev *Analysis, newSrc string, rec obs.Recorder, tr *obs.Tracer) (*Analysis, *IncrStats, error) {
	prog, err := lang.Parse(newSrc)
	if err != nil {
		return nil, nil, err
	}
	return ReanalyzeProgram(ctx, prev, prog, rec, tr)
}

// ReanalyzeProgram is the parse-free core of Reanalyze, for callers
// that already hold the new program's AST (e.g. from
// incremental.SpliceLine, which avoids the full reparse that would
// otherwise dominate a one-line edit).
//
// Tier decision:
//
//   - The ASTs are diffed statement by statement. Any structural
//     difference — statement inserted, deleted, kind changed, label or
//     goto target or case value changed — falls back to a cold
//     AnalyzeObservedContext ("full").
//   - Same shape with every definition intact reuses the
//     postdominator tree, CDG, LST, dataflow and all precomputed
//     worklists (they are pure functions of flowgraph shape, or of
//     shape plus definition sites); only the flowgraph is rebuilt and
//     the edited statements' dependence rows recomputed ("patched").
//     If the previous analysis had built its batch condensation and
//     the edit provably neither merges nor splits a dependence SCC,
//     the condensation and its memoized closures are patched over too.
//   - Same shape but with a changed definition re-runs dataflow and
//     the PDG merge on top of the reused shape-derived structures
//     ("partial").
//
// The freshly built flowgraph is verified node-for-node against the
// previous one before anything is reused, so a differ bug degrades to
// a full run, never to a wrong slice.
func ReanalyzeProgram(ctx context.Context, prev *Analysis, prog *lang.Program, rec obs.Recorder, tr *obs.Tracer) (*Analysis, *IncrStats, error) {
	rec = obs.OrNop(rec)
	im := resolveIncrMetrics(rec)
	sp := rec.StartSpan("phase.reanalyze")
	ts := tr.StartSpan("phase.reanalyze")
	defer func() { ts.End(); sp.End() }()

	stats := &IncrStats{}
	full := func(reason string) (*Analysis, *IncrStats, error) {
		stats.Outcome = "full"
		stats.Fallback = reason
		stats.PhasesReused = 0
		stats.PhasesRecomputed = numPhases
		im.fallbacks.Add(1)
		im.recomputed.Add(numPhases)
		a, err := AnalyzeObservedContext(ctx, prog, rec, tr)
		if err != nil {
			return nil, nil, err
		}
		return a, stats, nil
	}

	if prev == nil {
		return full("no previous analysis")
	}
	sc := incremental.Diff(prev.Prog, prog)
	stats.Edits = sc.Edits
	if !sc.SameShape {
		return full(sc.Mismatch)
	}

	// Re-derive the flowgraph by rebinding the previous node table
	// onto the new statements — the graph is structural, so a
	// same-shape program has the same one. Rebind re-verifies the
	// shape claim position by position (kinds, labels, goto targets)
	// and refuses anything the differ should have caught, so a differ
	// bug degrades to a full run, never to a wrong graph.
	g2, ok := cfg.Rebind(prev.CFG, prog)
	if !ok {
		return full("flowgraph rebind mismatch")
	}

	a := &Analysis{
		Prog:  prog,
		CFG:   g2,
		batch: &batchState{},
		rec:   rec,
		tr:    tr,
	}
	a.m.resolve(rec)
	a.bindContext(ctx)
	if err := a.checkCancel("reanalyze"); err != nil {
		return nil, nil, err
	}

	// Shape-pure structures: the postdominator tree holds no graph
	// reference and is shared outright; CDG and LST are shallow-copied
	// with their graph pointer rebound so queries resolve against the
	// new nodes.
	a.PDT = prev.PDT
	cd := *prev.CDG
	cd.CFG = g2
	a.CDG = &cd
	lt := *prev.LST
	lt.CFG = g2
	a.LST = &lt

	// Worklists: live, switch enclosure, jump preorders and
	// conditional-jump pairs are all functions of shape and node IDs;
	// goto nodes are pointers and re-resolve into the new graph.
	a.live = prev.live
	a.enclosingSwitch = prev.enclosingSwitch
	a.jumpsPDT = prev.jumpsPDT
	a.jumpsLST = prev.jumpsLST
	a.condJumps = prev.condJumps
	a.switchNodes = prev.switchNodes
	a.gotoNodes = make([]*cfg.Node, len(prev.gotoNodes))
	for i, n := range prev.gotoNodes {
		a.gotoNodes[i] = g2.Nodes[n.ID]
	}

	defChanged := false
	for _, r := range sc.Replaced {
		if r.DefChanged {
			defChanged = true
			break
		}
	}
	if defChanged {
		// Partial tier: a definition site changed variables, so the
		// reaching-definitions frontier moved — re-run dataflow and
		// the PDG merge on the reused shape-derived structures.
		stats.Outcome = "partial"
		stats.PhasesReused = 4     // postdominators, cdg, lst, worklists
		stats.PhasesRecomputed = 3 // cfg, dataflow, pdg
		a.RD = dataflow.Reach(g2)
		if err := a.checkCancel("reanalyze"); err != nil {
			return nil, nil, err
		}
		a.PDG = pdg.Build(g2, a.CDG, a.RD)
	} else {
		// Patched tier: same definitions everywhere, so reaching
		// definitions are untouched; only the edited statements' data
		// dependence rows can differ.
		stats.Outcome = "patched"
		stats.PhasesReused = 5     // postdominators, cdg, dataflow, lst, worklists
		stats.PhasesRecomputed = 2 // cfg, pdg rows
		a.RD = prev.RD.WithGraph(g2)
		changed := make(map[int][]int, len(sc.Replaced))
		for _, r := range sc.Replaced {
			// Resolve through the previous graph's statement index —
			// positions are identical across a same-shape rebind, and
			// prev's index is already built while g2's would have to be
			// materialized just for this lookup.
			pn := prev.CFG.NodeFor(r.Old)
			if pn == nil {
				return full("edited statement has no flowgraph node")
			}
			n := g2.Nodes[pn.ID]
			changed[n.ID] = a.RD.DataDepsOf(n)
		}
		a.PDG = prev.PDG.Rederive(g2, a.CDG, changed)
		a.patchCondensation(prev, changed, stats)
	}
	im.reused.Add(int64(stats.PhasesReused))
	im.recomputed.Add(int64(stats.PhasesRecomputed))
	return a, stats, nil
}

// patchCondensation tries to carry the previous analysis's batch
// condensation — and its memoized component closures — across a
// patched-tier edit. The previous condensation is read through its
// atomic slot (other views of prev may be slicing concurrently) and
// is never modified; Patched refuses any edit that might merge or
// split a component, in which case the new analysis simply rebuilds
// its condensation lazily on the next SliceAll.
func (a *Analysis) patchCondensation(prev *Analysis, changed map[int][]int, stats *IncrStats) {
	prevCond := prev.batch.cond.Load()
	if prevCond == nil {
		return
	}
	// Augment the edited rows exactly as batchEngine augments the full
	// relation: dependence row, then the conditional-jump edge, then
	// the switch-enclosure edge. Extras are shape-derived and did not
	// change — only the dependence part of each edited row did.
	rows := make(map[int][]int, len(changed))
	for id := range changed {
		deps := a.PDG.Deps(id)
		row := make([]int, 0, len(deps)+2)
		row = append(row, deps...)
		for _, cj := range a.condJumps {
			if cj.pred == id {
				row = append(row, cj.jump)
			}
		}
		if sw := a.enclosingSwitch[id]; sw >= 0 {
			row = append(row, sw)
		}
		rows[id] = row
	}
	q, ok := prevCond.Patched(rows)
	if !ok {
		return
	}
	q.Instrument(
		a.rec.Counter("pdg.closure_requests"),
		a.rec.Counter("pdg.closure_hits"),
		a.rec.Counter("pdg.closure_builds"))
	q.Trace(a.tr)
	a.batch.cond.Store(q)
	stats.CondensationPatched = true
	stats.PhasesReused++ // the condensation survived as an eighth phase
}
