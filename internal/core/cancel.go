package core

import (
	"context"
	"fmt"
)

// Cooperative cancellation. An Analysis built with
// AnalyzeObservedContext carries its request's context, and every
// phase of the pipeline consults it at bounded intervals: Analyze
// checks between construction phases, the Figure 7/12/13 fixpoint
// loops check once per traversal and every cancelCheckJumps candidate
// examinations, and the dependence-closure engines check every few
// hundred node visits (internal/pdg's cancelCheckNodes and
// cancelCheckComps). A canceled context therefore aborts an in-flight
// analysis within a bounded amount of work, the observed cancellation
// is journaled as a trace event (kind "cancel", named after the site
// that noticed) and counted under core.cancellations, and the entry
// point returns an error wrapping context.Canceled or
// context.DeadlineExceeded for the caller to classify.
//
// An Analysis built without a context (Analyze, AnalyzeRecorded,
// AnalyzeObserved) pays a single nil-check per cadence interval —
// BenchmarkSliceAll gates that this stays within the perf envelope.

// cancelCheckJumps is the fixpoint-loop cadence: the jump-detection
// worklist loops consult the context once per this many candidate
// examinations (and always once per traversal pass).
const cancelCheckJumps = 64

// bindContext attaches a request context to the Analysis. Contexts
// that can never be canceled (nil, Background, or any other context
// without a Done channel) leave cancellation disabled, keeping the
// hot paths on their one-nil-check cost.
func (a *Analysis) bindContext(ctx context.Context) {
	if ctx == nil || ctx.Done() == nil {
		return
	}
	a.ctx = ctx
	a.cancelf = func() error { return a.checkCancel("closure") }
}

// Context returns the context the Analysis was built with
// (context.Background when none was).
func (a *Analysis) Context() context.Context {
	if a.ctx == nil {
		return context.Background()
	}
	return a.ctx
}

// checkCancel reports pending cancellation: nil while the Analysis's
// context (if any) is live, and otherwise an error wrapping the
// context's error, after journaling one cancellation event naming the
// detection site and counting it under core.cancellations.
func (a *Analysis) checkCancel(where string) error {
	if a.ctx == nil {
		return nil
	}
	if err := a.ctx.Err(); err != nil {
		return a.canceled(where, err)
	}
	return nil
}

// canceled records one observed cancellation and wraps err with the
// detection site.
func (a *Analysis) canceled(where string, err error) error {
	a.m.cancellations.Add(1)
	a.tr.Canceled(where)
	return fmt.Errorf("core: %s: %w", where, err)
}
