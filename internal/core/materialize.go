package core

import (
	"sort"

	"jumpslice/internal/cfg"
	"jumpslice/internal/lang"
)

// Materialize projects the slice back onto the program text, producing
// a runnable subprogram:
//
//   - statements whose flowgraph node is in the slice are kept;
//   - compound statements are kept when their predicate is in the
//     slice or any nested statement is (structural closure — with the
//     dependence closure this only triggers for gotos into branches);
//   - pruned branches collapse to empty blocks so the kept structure
//     still parses;
//   - switch clauses survive even when emptied (an emptied clause must
//     still fall through into a later kept clause), except trailing
//     empty clauses, which are behaviourally inert and dropped — the
//     paper's Figure 14-b drops case 3 the same way;
//   - goto labels whose statement was pruned re-attach to the
//     statement of their nearest postdominator in the slice, per the
//     paper's final step; a label retargeted past the last statement
//     becomes a trailing "L: ;".
//
// The result shares unpruned statement values with the original AST,
// so printed line numbers match the original program, as in the
// paper's figure listings.
func (s *Slice) Materialize() *lang.Program {
	a := s.Analysis
	m := &materializer{
		slice:  s,
		labels: map[int][]string{},
	}
	for label, nodeID := range s.Relabeled {
		m.labels[nodeID] = append(m.labels[nodeID], label)
	}
	// Relabeled is a map; fix the attachment order of labels sharing a
	// target so materialization is a pure function of the slice (the
	// daemon's ETag and the cache's byte-identical-response property
	// both assume deterministic output).
	for _, ls := range m.labels {
		sort.Strings(ls)
	}

	out := &lang.Program{Labels: map[string]*lang.LabeledStmt{}}
	for _, st := range a.Prog.Body {
		if r := m.rebuild(st); r != nil {
			out.Body = append(out.Body, r)
		}
	}
	// Labels re-attached past the end of the program.
	for _, label := range m.labels[a.CFG.Exit.ID] {
		out.Body = append(out.Body, &lang.LabeledStmt{
			Label: label,
			Stmt:  &lang.EmptyStmt{},
		})
	}
	// Rebuild the label index.
	var index func(st lang.Stmt)
	index = func(st lang.Stmt) {
		lang.Walk(st, func(x lang.Stmt) {
			if l, ok := x.(*lang.LabeledStmt); ok {
				out.Labels[l.Label] = l
			}
		})
	}
	for _, st := range out.Body {
		index(st)
	}
	return out
}

// Format pretty-prints the materialized slice with the original line
// numbers, matching the paper's figure style.
func (s *Slice) Format() string {
	return lang.Format(s.Materialize(), lang.PrintOptions{LineNumbers: true})
}

type materializer struct {
	slice *Slice
	// labels maps node IDs to retargeted labels that must be attached
	// in front of that node's statement.
	labels map[int][]string
}

// inSlice reports whether the statement's own node is in the slice.
func (m *materializer) inSlice(st lang.Stmt) bool {
	n := m.slice.Analysis.CFG.NodeFor(st)
	return n != nil && m.slice.Nodes.Has(n.ID)
}

// anyKept reports whether any node-bearing statement in the subtree is
// in the slice.
func (m *materializer) anyKept(st lang.Stmt) bool {
	kept := false
	lang.Walk(st, func(x lang.Stmt) {
		if kept {
			return
		}
		switch x.(type) {
		case *lang.BlockStmt, *lang.LabeledStmt:
			return
		}
		if m.inSlice(x) {
			kept = true
		}
	})
	return kept
}

// wrapRetargeted prefixes st with any labels retargeted onto its node.
func (m *materializer) wrapRetargeted(st lang.Stmt, node *cfg.Node) lang.Stmt {
	if node == nil {
		return st
	}
	labels := m.labels[node.ID]
	// Attach in reverse so the first label ends up outermost; the
	// order among multiple retargeted labels is not semantically
	// significant.
	for i := len(labels) - 1; i >= 0; i-- {
		st = &lang.LabeledStmt{P: st.Pos(), Label: labels[i], Stmt: st}
	}
	return st
}

// rebuild returns the materialized version of st, or nil if nothing of
// it survives.
func (m *materializer) rebuild(st lang.Stmt) lang.Stmt {
	cfgNode := m.slice.Analysis.CFG.NodeFor(st)
	switch st := st.(type) {
	case nil:
		return nil
	case *lang.LabeledStmt:
		inner := m.rebuild(st.Stmt)
		if inner == nil {
			return nil
		}
		return &lang.LabeledStmt{P: st.P, Label: st.Label, Stmt: inner}
	case *lang.AssignStmt, *lang.ReadStmt, *lang.WriteStmt, *lang.GotoStmt,
		*lang.BreakStmt, *lang.ContinueStmt, *lang.ReturnStmt, *lang.CallStmt, *lang.EmptyStmt:
		if !m.inSlice(st) {
			return nil
		}
		return m.wrapRetargeted(st, cfgNode)
	case *lang.IfStmt:
		if !m.inSlice(st) && !m.anyKept(st) {
			return nil
		}
		out := &lang.IfStmt{P: st.P, Cond: st.Cond}
		out.Then = m.rebuildBranch(st.Then, st.P)
		if st.Else != nil {
			if e := m.rebuild(st.Else); e != nil {
				out.Else = e
			}
		}
		return m.wrapRetargeted(out, cfgNode)
	case *lang.WhileStmt:
		if !m.inSlice(st) && !m.anyKept(st) {
			return nil
		}
		out := &lang.WhileStmt{P: st.P, Cond: st.Cond}
		out.Body = m.rebuildBranch(st.Body, st.P)
		return m.wrapRetargeted(out, cfgNode)
	case *lang.SwitchStmt:
		if !m.inSlice(st) && !m.anyKept(st) {
			return nil
		}
		out := &lang.SwitchStmt{P: st.P, Tag: st.Tag}
		// Strict projection keeps every clause (an emptied clause must
		// still fall through into a later kept clause, or the slice's
		// dispatch behaviour changes); only trailing clauses with no
		// surviving statements are dropped, which is behaviourally
		// neutral and matches the paper's Figure 14-b dropping case 3.
		for _, c := range st.Cases {
			var body []lang.Stmt
			for _, bs := range c.Body {
				if r := m.rebuild(bs); r != nil {
					body = append(body, r)
				}
			}
			out.Cases = append(out.Cases, &lang.CaseClause{
				P: c.P, Values: c.Values, IsDefault: c.IsDefault, Body: body,
			})
		}
		last := len(out.Cases) - 1
		for last >= 0 && len(out.Cases[last].Body) == 0 {
			last--
		}
		out.Cases = out.Cases[:last+1]
		return m.wrapRetargeted(out, cfgNode)
	case *lang.BlockStmt:
		var list []lang.Stmt
		for _, bs := range st.List {
			if r := m.rebuild(bs); r != nil {
				list = append(list, r)
			}
		}
		if len(list) == 0 {
			return nil
		}
		return &lang.BlockStmt{P: st.P, List: list}
	}
	return nil
}

// rebuildBranch materializes an if/while body, substituting an empty
// block when nothing survives so the compound statement still parses.
func (m *materializer) rebuildBranch(st lang.Stmt, pos lang.Pos) lang.Stmt {
	if r := m.rebuild(st); r != nil {
		return r
	}
	return &lang.BlockStmt{P: pos}
}
