package core_test

import (
	"context"
	"errors"
	"testing"

	"jumpslice/internal/core"
	"jumpslice/internal/obs"
	"jumpslice/internal/paper"
	"jumpslice/internal/progen"
)

// TestRebindSlicesIdentical asserts a rebound view computes exactly
// the slices of the original Analysis, for every algorithm.
func TestRebindSlicesIdentical(t *testing.T) {
	f := paper.Fig5()
	a := core.MustAnalyze(f.Parse())
	v := a.Rebind(context.Background(), obs.NewRegistry(), nil)
	c := core.Criterion{Var: f.Criterion.Var, Line: f.Criterion.Line}
	algos := map[string]func(*core.Analysis) (*core.Slice, error){
		"agrawal":      func(a *core.Analysis) (*core.Slice, error) { return a.Agrawal(c) },
		"structured":   func(a *core.Analysis) (*core.Slice, error) { return a.AgrawalStructured(c) },
		"conservative": func(a *core.Analysis) (*core.Slice, error) { return a.AgrawalConservative(c) },
		"conventional": func(a *core.Analysis) (*core.Slice, error) { return a.Conventional(c) },
	}
	for name, run := range algos {
		want, err1 := run(a)
		got, err2 := run(v)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("%s: error mismatch: %v vs %v", name, err1, err2)
		}
		if err1 != nil {
			continue
		}
		if !want.Nodes.Equal(got.Nodes) {
			t.Errorf("%s: rebound view slice differs: %v vs %v", name, want.Lines(), got.Lines())
		}
	}
}

// TestRebindSharesBatchCondensation asserts the expensive batch
// condensation is built once and shared across views: the
// phase.analyze.condense span fires exactly once no matter which view
// batch-slices first.
func TestRebindSharesBatchCondensation(t *testing.T) {
	reg := obs.NewRegistry()
	p := progen.Structured(progen.Config{Seed: 3, Stmts: 40})
	a, err := core.AnalyzeRecorded(p, reg)
	if err != nil {
		t.Fatal(err)
	}
	wcs := progen.WriteCriteria(p)
	crits := []core.Criterion{{Var: wcs[len(wcs)-1].Var, Line: wcs[len(wcs)-1].Line}}

	v1 := a.Rebind(context.Background(), reg, nil)
	if _, err := v1.SliceAll(crits); err != nil {
		t.Fatal(err)
	}
	v2 := a.Rebind(context.Background(), reg, nil)
	if _, err := v2.SliceAll(crits); err != nil {
		t.Fatal(err)
	}
	if _, err := a.SliceAll(crits); err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	for _, h := range snap.Histograms {
		if h.Name == "phase.analyze.condense" && h.Count != 1 {
			t.Errorf("condensation built %d times across views, want 1", h.Count)
		}
	}
}

// TestRebindCancellationIsPerView asserts a canceled view fails its
// calls while the base Analysis and sibling views keep working — the
// property the cache's shared-analysis model depends on.
func TestRebindCancellationIsPerView(t *testing.T) {
	f := paper.Fig5()
	a := core.MustAnalyze(f.Parse())
	c := core.Criterion{Var: f.Criterion.Var, Line: f.Criterion.Line}

	ctx, cancel := context.WithCancel(context.Background())
	dead := a.Rebind(ctx, nil, nil)
	cancel()
	if _, err := dead.Agrawal(c); !errors.Is(err, context.Canceled) {
		t.Errorf("canceled view Agrawal err = %v, want context.Canceled", err)
	}
	if _, err := a.Agrawal(c); err != nil {
		t.Errorf("base Analysis affected by view cancellation: %v", err)
	}
	live := a.Rebind(context.Background(), nil, nil)
	if _, err := live.Agrawal(c); err != nil {
		t.Errorf("sibling view affected by view cancellation: %v", err)
	}
	// Rebinding with a nil context detaches cancellation entirely.
	detached := dead.Rebind(nil, nil, nil)
	if _, err := detached.Agrawal(c); err != nil {
		t.Errorf("detached view still canceled: %v", err)
	}
}

// TestFootprintDeterministic asserts the cache cost model: equal
// programs weigh equal bytes, and the estimate is positive and grows
// with program size.
func TestFootprintDeterministic(t *testing.T) {
	small := progen.Structured(progen.Config{Seed: 1, Stmts: 20})
	a1 := core.MustAnalyze(small)
	a2 := core.MustAnalyze(progen.Structured(progen.Config{Seed: 1, Stmts: 20}))
	if a1.Footprint() != a2.Footprint() {
		t.Errorf("same program, different footprints: %d vs %d", a1.Footprint(), a2.Footprint())
	}
	if a1.Footprint() <= 0 {
		t.Errorf("footprint = %d, want positive", a1.Footprint())
	}
	big := core.MustAnalyze(progen.Structured(progen.Config{Seed: 1, Stmts: 200}))
	if big.Footprint() <= a1.Footprint() {
		t.Errorf("200-stmt footprint %d not larger than 20-stmt footprint %d", big.Footprint(), a1.Footprint())
	}
	if v := a1.Rebind(nil, nil, nil); v.Footprint() != a1.Footprint() {
		t.Errorf("rebound view footprint %d differs from base %d", v.Footprint(), a1.Footprint())
	}
}
