package core

import (
	"strings"
	"testing"

	"jumpslice/internal/lang"
	"jumpslice/internal/paper"
)

func mustSet(t *testing.T, src string) *ProgramSet {
	t.Helper()
	prog, err := lang.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	ps, err := AnalyzeProgramSet(prog)
	if err != nil {
		t.Fatalf("analyze set: %v", err)
	}
	return ps
}

const twoProcSrc = `proc add(s, x) {
    s = s + x;
}
read(a);
read(b);
sum = 0;
cnt = 0;
call add(sum, a);
call add(cnt, b);
write(sum);
write(cnt);
`

func TestSliceInterprocCrossesCallBoundary(t *testing.T) {
	ps := mustSet(t, twoProcSrc)
	s, err := ps.SliceInterproc(Criterion{Var: "sum", Line: 10})
	if err != nil {
		t.Fatalf("slice: %v", err)
	}
	lines := s.Lines()
	want := []int{2, 4, 6, 8, 10}
	if len(lines) != len(want) {
		t.Fatalf("lines = %v, want %v", lines, want)
	}
	for i, l := range want {
		if lines[i] != l {
			t.Fatalf("lines = %v, want %v", lines, want)
		}
	}
	// The materialized slice must keep the proc declaration and drop
	// the cnt call chain.
	text := s.Format()
	if !strings.Contains(text, "proc add(s, x)") {
		t.Errorf("materialized slice lost the proc declaration:\n%s", text)
	}
	if strings.Contains(text, "cnt") {
		t.Errorf("materialized slice kept the unrelated cnt chain:\n%s", text)
	}
}

func TestSliceInterprocIrrelevantCalleeDropped(t *testing.T) {
	src := `proc double(v) {
    v = v * 2;
}
proc zero(v) {
    v = 0;
}
read(a);
read(b);
call double(a);
call zero(b);
write(a);
`
	ps := mustSet(t, src)
	s, err := ps.SliceInterproc(Criterion{Var: "a", Line: 10})
	if err != nil {
		t.Fatalf("slice: %v", err)
	}
	text := s.Format()
	if !strings.Contains(text, "proc double") {
		t.Errorf("slice lost relevant proc double:\n%s", text)
	}
	if strings.Contains(text, "proc zero") {
		t.Errorf("slice kept irrelevant proc zero:\n%s", text)
	}
	if strings.Contains(text, "read(b)") {
		t.Errorf("slice kept irrelevant read(b):\n%s", text)
	}
}

func TestSliceInterprocJumpRepairInCallee(t *testing.T) {
	// The callee is the paper's Figure 10-a program (the unstructured
	// example needing two productive Figure 7 traversals), with its
	// writes replaced by out-parameters. The per-procedure repair must
	// admit the same jumps the intraprocedural algorithm admits.
	src := `proc weave(x, y, z) {
    if (c1()) {
        goto L6;
L3:     y = f1();
        goto L8;
    }
    z = g1();
L6: x = h1();
    goto L3;
L8: ;
}
call weave(a, b, c);
write(b);
`
	ps := mustSet(t, src)
	s, err := ps.SliceInterproc(Criterion{Var: "b", Line: 13})
	if err != nil {
		t.Fatalf("slice: %v", err)
	}
	if s.JumpsAdded == 0 {
		t.Fatalf("expected the callee's gotos to be admitted by jump repair; slice:\n%s", s.Format())
	}
	text := s.Format()
	for _, want := range []string{"goto L6;", "goto L3;", "goto L8;"} {
		if !strings.Contains(text, want) {
			t.Errorf("slice lost %q:\n%s", want, text)
		}
	}
}

func TestSliceInterprocSingleProcMatchesAgrawal(t *testing.T) {
	// Figure 5's program (single procedure): the SDG slice must be
	// byte-identical to the intraprocedural Agrawal slice.
	src := `read(n);
i = 1;
sum = 0;
prod = 1;
while (i <= n) {
    if (i % 2 == 0) {
        sum = sum + i;
    }
    prod = prod * i;
    i = i + 1;
    if (prod > 100) {
        break;
    }
}
write(sum);
write(prod);
`
	prog, err := lang.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	a, err := Analyze(prog)
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	ps := mustSet(t, src)
	for _, c := range []Criterion{{Var: "prod", Line: 16}, {Var: "sum", Line: 15}, {Var: "i", Line: 10}} {
		want, err := a.Agrawal(c)
		if err != nil {
			t.Fatalf("agrawal %v: %v", c, err)
		}
		got, err := ps.SliceInterproc(c)
		if err != nil {
			t.Fatalf("sdg %v: %v", c, err)
		}
		if got.Format() != want.Format() {
			t.Errorf("criterion %v: sdg slice differs from agrawal\nsdg:\n%s\nagrawal:\n%s", c, got.Format(), want.Format())
		}
	}
}

func TestSliceInterprocPaperFiguresMatchAgrawal(t *testing.T) {
	// Every paper figure is a single-procedure program; the SDG slice
	// must be byte-identical to the Figure 7 slice on all of them.
	for _, f := range paper.All() {
		f := f
		t.Run(f.Name, func(t *testing.T) {
			a := analyzeFig(t, f)
			c := crit(f)
			want, err := a.Agrawal(c)
			if err != nil {
				t.Fatalf("agrawal: %v", err)
			}
			ps, err := AnalyzeProgramSet(f.Parse())
			if err != nil {
				t.Fatalf("analyze set: %v", err)
			}
			got, err := ps.SliceInterproc(c)
			if err != nil {
				t.Fatalf("sdg: %v", err)
			}
			if got.Format() != want.Format() {
				t.Errorf("sdg slice differs from agrawal\nsdg:\n%s\nagrawal:\n%s", got.Format(), want.Format())
			}
			if g, w := got.JumpsAdded, len(want.JumpsAdded); g != w {
				t.Errorf("sdg admitted %d jumps, agrawal %d", g, w)
			}
		})
	}
}

func TestSliceInterprocExplainNamesParamEdges(t *testing.T) {
	ps := mustSet(t, twoProcSrc)
	s, err := ps.SliceInterproc(Criterion{Var: "sum", Line: 10})
	if err != nil {
		t.Fatalf("slice: %v", err)
	}
	var all []string
	for _, rs := range s.EdgeReasons() {
		all = append(all, rs...)
	}
	joined := strings.Join(all, "\n")
	for _, kind := range []string{"param-in", "param-out", "summary", "call"} {
		if !strings.Contains(joined, kind) {
			t.Errorf("edge reasons missing %q:\n%s", kind, joined)
		}
	}
}

func TestSliceInterprocWarmSummariesReused(t *testing.T) {
	ps := mustSet(t, twoProcSrc)
	if ps.SDG.SummariesComputed() {
		t.Fatal("summaries computed before first slice")
	}
	if _, err := ps.SliceInterproc(Criterion{Var: "sum", Line: 10}); err != nil {
		t.Fatalf("slice: %v", err)
	}
	if !ps.SDG.SummariesComputed() {
		t.Fatal("summaries not computed by first slice")
	}
	// Second slice of a different criterion reuses them (observable
	// only as "still computed and no error"; the perf gate measures
	// the actual speedup).
	if _, err := ps.SliceInterproc(Criterion{Var: "cnt", Line: 11}); err != nil {
		t.Fatalf("warm slice: %v", err)
	}
}
