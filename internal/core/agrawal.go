package core

import (
	"fmt"

	"jumpslice/internal/bits"
)

// Agrawal computes the slice with the paper's general algorithm
// (Figure 7):
//
//	Slice = conventional slice
//	do {
//	    traverse the postdominator tree in preorder; for each jump J
//	    not in Slice whose nearest postdominator in Slice differs from
//	    its nearest lexical successor in Slice:
//	        add J and the transitive closure of J's dependences
//	} until no new jump can be added
//	re-associate dangling goto labels
//
// Additions take effect immediately within a traversal (the paper's
// running example relies on this: including node 13 of Figure 3 makes
// it the nearest postdominator and lexical successor of node 11, so 11
// is rejected later in the same traversal).
//
// For many criteria on the same Analysis, SliceAll computes the same
// slices faster by sharing memoized dependence closures.
func (a *Analysis) Agrawal(c Criterion) (*Slice, error) {
	return a.agrawalWith(c, a.engine())
}

// agrawalWith is Agrawal parameterized by the closure engine.
func (a *Analysis) agrawalWith(c Criterion, eng depEngine) (*Slice, error) {
	conv, err := a.conventionalWith(c, eng)
	if err != nil {
		return nil, err
	}
	set := conv.Nodes
	s := &Slice{
		Analysis:  a,
		Criterion: c,
		Algorithm: "agrawal",
		Nodes:     set,
	}
	jumps, rules, traversals, err := a.repairJumps(set, a.jumpsPDT, eng)
	if err != nil {
		return nil, err
	}
	s.JumpsAdded, s.JumpRules, s.Traversals = jumps, rules, traversals
	s.Relabeled = a.retargetLabels(set)
	a.recordSlice(s.Algorithm, set)
	return s, nil
}

// RepairJumps runs the paper's Figure 7 jump-detection loop over an
// arbitrary base slice set, mutating it in place: repeated preorder
// traversals of the postdominator tree add every live jump whose
// nearest postdominator in the set differs from its nearest lexical
// successor in the set, together with the closure of its dependences,
// until a fixpoint. It returns the jumps added (in discovery order),
// the rule evidence observed at each admission (parallel to
// jumpsAdded), and the number of traversals performed (counting the
// final empty one).
//
// Beyond serving Agrawal, this is the building block for slicing
// variants that compute their base set differently — the dynamic
// slicer (internal/dynslice) repairs a dynamic statement set with it.
func (a *Analysis) RepairJumps(set *bits.Set) (jumpsAdded []int, rules []JumpRule, traversals int, err error) {
	return a.repairJumps(set, a.jumpsPDT, a.engine())
}

// repairJumps is the Figure 7 loop over a precomputed worklist of
// live jumps in tree-preorder (jumpsPDT for the paper's driver,
// jumpsLST for the lexical-successor alternative). Each traversal
// touches only jump nodes; non-jumps were never acted on, so the
// additions — and the reported traversal count — are identical to a
// full-preorder scan.
func (a *Analysis) repairJumps(set *bits.Set, worklist []int, eng depEngine) (jumpsAdded []int, rules []JumpRule, traversals int, err error) {
	examined := 0
	for {
		traversals++
		a.m.traversals.Add(1)
		a.tr.Traversal("fig7", traversals)
		if err := a.checkCancel("fig7"); err != nil {
			return nil, nil, traversals, err
		}
		changed := false
		for _, v := range worklist {
			if set.Has(v) {
				continue
			}
			a.m.jumpsExamined.Add(1)
			if examined++; examined%cancelCheckJumps == 0 {
				if err := a.checkCancel("fig7"); err != nil {
					return nil, nil, traversals, err
				}
			}
			pd := a.nearestPostdomInSlice(v, set)
			ls := a.nearestLexInSlice(v, set)
			if pd == ls {
				continue
			}
			if err := a.addJumpWithClosure(set, v, eng); err != nil {
				return nil, nil, traversals, err
			}
			jumpsAdded = append(jumpsAdded, v)
			rules = append(rules, JumpRule{NearestPD: pd, NearestLS: ls})
			a.m.jumpsAdmitted.Add(1)
			a.tr.JumpAdmitted("fig7", v, pd, ls)
			changed = true
		}
		if !changed {
			return jumpsAdded, rules, traversals, nil
		}
		if traversals > len(a.CFG.Nodes)+1 {
			// Each productive traversal adds at least one jump, so
			// traversal count is bounded by the jump count; this guard
			// only trips on an implementation bug.
			return nil, nil, traversals, fmt.Errorf("core: Figure 7 loop failed to converge after %d traversals", traversals)
		}
	}
}

// AgrawalLST is the Figure 7 algorithm driven by preorder traversals
// of the lexical successor tree instead of the postdominator tree —
// the alternative the paper notes yields the same final slice, though
// possibly with a different number of traversals. It exists for the
// equivalence experiments.
func (a *Analysis) AgrawalLST(c Criterion) (*Slice, error) {
	conv, err := a.Conventional(c)
	if err != nil {
		return nil, err
	}
	set := conv.Nodes
	s := &Slice{
		Analysis:  a,
		Criterion: c,
		Algorithm: "agrawal-lst",
		Nodes:     set,
	}
	jumps, rules, traversals, err := a.repairJumps(set, a.jumpsLST, a.engine())
	if err != nil {
		return nil, fmt.Errorf("core: LST-driven algorithm: %w", err)
	}
	s.JumpsAdded, s.JumpRules, s.Traversals = jumps, rules, traversals
	s.Relabeled = a.retargetLabels(set)
	a.recordSlice(s.Algorithm, set)
	return s, nil
}

// recordSlice reports a finished slice to the recorder and the trace:
// one slice counted, its final node count observed, one trace event
// named after the algorithm. A single nil-check each when recording
// and tracing are disabled.
func (a *Analysis) recordSlice(algo string, set *bits.Set) {
	a.m.slices.Add(1)
	if a.m.sliceNodes != nil {
		a.m.sliceNodes.Observe(int64(set.Len()))
	}
	if a.tr != nil {
		a.tr.SliceDone(algo, set.Len())
	}
}

// addJumpWithClosure adds jump node v to the slice together with the
// transitive closure of its data and control dependences, keeping the
// conditional-jump adaptation invariant (a predicate pulled in by the
// closure brings its associated jump along — Figure 8's predicate 9).
func (a *Analysis) addJumpWithClosure(set *bits.Set, v int, eng depEngine) error {
	if _, err := eng.grow(set, v); err != nil {
		return err
	}
	return a.normalizeSlice(set, eng)
}
