package core

import (
	"jumpslice/internal/bits"
	"jumpslice/internal/pdg"
)

// depEngine abstracts how backward dependence closures are computed.
// Every slicing algorithm in this package is written against it, so
// the same Figure-7 logic runs on either engine:
//
//   - bfsEngine walks the PDG per call (the paper's formulation;
//     no setup cost, right for one-off slices), and
//   - condEngine unions memoized SCC-component closures (word-parallel
//     bitset work shared across criteria; right for batch slicing).
//
// The two are interchangeable by construction — both compute the same
// least fixpoint over the same dependence relation — and the batch
// property tests assert it.
//
// Both engines carry the Analysis's cancellation callback (nil unless
// the Analysis was built with a cancelable context), and their
// closure walks consult it at a bounded cadence; a cancellation
// surfaces as the error return, which every caller propagates.
type depEngine interface {
	// backwardClosure returns the closure of the seeds as a fresh set.
	backwardClosure(seeds []int) (*bits.Set, error)
	// grow unions seed's closure into set, reporting whether set grew.
	grow(set *bits.Set, seed int) (bool, error)
	// closuresNormalized reports whether closures from this engine
	// already satisfy the slice invariants (conditional-jump
	// adaptation and switch enclosure), making normalizeSlice a no-op.
	closuresNormalized() bool
}

type bfsEngine struct {
	p      *pdg.Graph
	cancel func() error
}

func (e bfsEngine) backwardClosure(seeds []int) (*bits.Set, error) {
	return e.p.BackwardClosureCancel(seeds, e.cancel)
}
func (e bfsEngine) grow(set *bits.Set, seed int) (bool, error) {
	return e.p.GrowClosureCancel(set, seed, e.cancel)
}
func (e bfsEngine) closuresNormalized() bool { return false }

type condEngine struct {
	c      *pdg.Condensation
	cancel func() error
}

func (e condEngine) backwardClosure(seeds []int) (*bits.Set, error) {
	return e.c.BackwardClosureCancel(seeds, e.cancel)
}
func (e condEngine) grow(set *bits.Set, seed int) (bool, error) {
	return e.c.GrowClosureCancel(set, seed, e.cancel)
}
func (e condEngine) closuresNormalized() bool { return true }

// engine returns the per-call BFS engine, the default for the
// single-criterion entry points.
func (a *Analysis) engine() depEngine { return bfsEngine{a.PDG, a.cancelf} }

// batchEngine returns the condensation-backed engine, building the
// condensation on first use and caching it on the Analysis so every
// batch call — and every criterion within one — shares the memoized
// component closures.
//
// The condensed relation is the PDG's dependence edges augmented with
// the two invariants normalizeSlice maintains, encoded as edges:
// predicate → its conditional jump (Section 3's adaptation) and
// statement → its enclosing switch tag. A slice built as a union of
// closures over the augmented relation is closed under both
// invariants by construction — the same least fixpoint the BFS
// engine's grow-then-normalize loop computes — so the batch path
// skips the normalization passes entirely.
func (a *Analysis) batchEngine() depEngine {
	a.batch.once.Do(func() {
		if a.batch.cond.Load() != nil {
			return // pre-seeded by the incremental engine
		}
		sp := a.rec.StartSpan("phase.analyze.condense")
		ts := a.tr.StartSpan("phase.analyze.condense")
		defer func() { ts.End(); sp.End() }()
		n := a.CFG.NumNodes()
		aug := make([][]int, n)
		extra := make(map[int][]int, len(a.condJumps)+len(a.switchNodes))
		for _, cj := range a.condJumps {
			extra[cj.pred] = append(extra[cj.pred], cj.jump)
		}
		for _, id := range a.switchNodes {
			extra[id] = append(extra[id], a.enclosingSwitch[id])
		}
		for v := 0; v < n; v++ {
			deps := a.PDG.Deps(v)
			if add := extra[v]; len(add) > 0 {
				merged := make([]int, 0, len(deps)+len(add))
				merged = append(merged, deps...)
				merged = append(merged, add...)
				aug[v] = merged
			} else {
				aug[v] = deps
			}
		}
		cond := pdg.Condense(aug)
		cond.Instrument(
			a.rec.Counter("pdg.closure_requests"),
			a.rec.Counter("pdg.closure_hits"),
			a.rec.Counter("pdg.closure_builds"))
		cond.Trace(a.tr)
		a.batch.cond.Store(cond)
	})
	return condEngine{a.batch.cond.Load(), a.cancelf}
}
