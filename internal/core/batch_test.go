package core

import (
	"reflect"
	"testing"

	"jumpslice/internal/bits"
	"jumpslice/internal/lang"
	"jumpslice/internal/progen"
)

// seedRepairJumps is the seed implementation of the Figure 7 loop,
// kept verbatim as a reference: a full postdominator-tree preorder
// scan per traversal, filtering non-jumps and dead nodes on the fly,
// with BFS dependence closures. The production repairJumps now runs
// over the precomputed live-jump worklist with pluggable closure
// engines; the tests below pin it to this reference — same final set,
// same traversal count, same jump-addition order.
func seedRepairJumps(a *Analysis, set *bits.Set) (jumpsAdded []int, traversals int) {
	order := a.PDT.Preorder()
	for {
		traversals++
		changed := false
		for _, v := range order {
			n := a.CFG.Nodes[v]
			if !n.Kind.IsJump() || set.Has(v) || !a.live[v] {
				continue
			}
			if a.nearestPostdomInSlice(v, set) == a.nearestLexInSlice(v, set) {
				continue
			}
			a.PDG.GrowClosure(set, v)
			if err := a.normalizeSlice(set, bfsEngine{p: a.PDG}); err != nil {
				panic(err)
			}
			jumpsAdded = append(jumpsAdded, v)
			changed = true
		}
		if !changed {
			return jumpsAdded, traversals
		}
	}
}

// batchCases runs fn over both progen corpora with the given seed
// count, handing it each analysis with its write criteria.
func batchCases(t *testing.T, seeds int, fn func(t *testing.T, corpus string, seed int64, a *Analysis, crits []Criterion)) {
	t.Helper()
	corpora := []struct {
		name string
		gen  func(progen.Config) *lang.Program
	}{
		{"structured", progen.Structured},
		{"unstructured", progen.Unstructured},
	}
	for _, corpus := range corpora {
		for seed := int64(0); seed < int64(seeds); seed++ {
			p := corpus.gen(progen.Config{Seed: seed, Stmts: 30})
			a, err := Analyze(p)
			if err != nil {
				t.Fatalf("%s seed %d: analyze: %v", corpus.name, seed, err)
			}
			var crits []Criterion
			for _, wc := range progen.WriteCriteria(p) {
				crits = append(crits, Criterion{Var: wc.Var, Line: wc.Line})
			}
			if len(crits) == 0 {
				continue
			}
			fn(t, corpus.name, seed, a, crits)
		}
	}
}

// TestPropertySliceAllEqualsAgrawal asserts the batch API returns,
// for every criterion, exactly the per-criterion Agrawal result:
// identical node sets, traversal counts, jump-addition order and
// label retargeting — the acceptance property of the condensation
// engine.
func TestPropertySliceAllEqualsAgrawal(t *testing.T) {
	const seeds = 120
	cases := 0
	batchCases(t, seeds, func(t *testing.T, corpus string, seed int64, a *Analysis, crits []Criterion) {
		batch, err := a.SliceAll(crits)
		if err != nil {
			t.Fatalf("%s seed %d: SliceAll: %v", corpus, seed, err)
		}
		for i, c := range crits {
			want, err := a.Agrawal(c)
			if err != nil {
				t.Fatalf("%s seed %d %s: Agrawal: %v", corpus, seed, c, err)
			}
			got := batch[i]
			cases++
			if !got.Nodes.Equal(want.Nodes) {
				t.Errorf("%s seed %d %s: SliceAll nodes %v, Agrawal %v", corpus, seed, c, got.Nodes, want.Nodes)
			}
			if got.Traversals != want.Traversals {
				t.Errorf("%s seed %d %s: SliceAll traversals %d, Agrawal %d", corpus, seed, c, got.Traversals, want.Traversals)
			}
			if !reflect.DeepEqual(got.JumpsAdded, want.JumpsAdded) {
				t.Errorf("%s seed %d %s: SliceAll jumps %v, Agrawal %v", corpus, seed, c, got.JumpsAdded, want.JumpsAdded)
			}
			if !reflect.DeepEqual(got.Relabeled, want.Relabeled) {
				t.Errorf("%s seed %d %s: SliceAll relabeled %v, Agrawal %v", corpus, seed, c, got.Relabeled, want.Relabeled)
			}
		}
	})
	if cases < 2*seeds {
		t.Fatalf("only %d cases exercised; generator drift?", cases)
	}
}

// TestPropertyWorklistMatchesSeedRepair asserts the precomputed
// jump-worklist traversal reproduces the seed implementation exactly:
// same final set, same Traversals, same JumpsAdded order — on both
// corpora, under both closure engines.
func TestPropertyWorklistMatchesSeedRepair(t *testing.T) {
	const seeds = 120
	batchCases(t, seeds, func(t *testing.T, corpus string, seed int64, a *Analysis, crits []Criterion) {
		for _, c := range crits {
			conv, err := a.Conventional(c)
			if err != nil {
				t.Fatalf("%s seed %d %s: conventional: %v", corpus, seed, c, err)
			}
			refSet := conv.Nodes.Clone()
			refJumps, refTraversals := seedRepairJumps(a, refSet)
			for _, eng := range []struct {
				name string
				e    depEngine
			}{{"bfs", a.engine()}, {"condensation", a.batchEngine()}} {
				set := conv.Nodes.Clone()
				jumps, _, traversals, err := a.repairJumps(set, a.jumpsPDT, eng.e)
				if err != nil {
					t.Fatalf("%s seed %d %s [%s]: repairJumps: %v", corpus, seed, c, eng.name, err)
				}
				if !set.Equal(refSet) {
					t.Errorf("%s seed %d %s [%s]: worklist set %v, seed impl %v", corpus, seed, c, eng.name, set, refSet)
				}
				if traversals != refTraversals {
					t.Errorf("%s seed %d %s [%s]: worklist traversals %d, seed impl %d", corpus, seed, c, eng.name, traversals, refTraversals)
				}
				if !reflect.DeepEqual(jumps, refJumps) {
					t.Errorf("%s seed %d %s [%s]: worklist jumps %v, seed impl %v", corpus, seed, c, eng.name, jumps, refJumps)
				}
			}
		}
	})
}
