// Package jumpslice is a program slicer for programs with jump
// statements, reproducing Hiralal Agrawal's "On Slicing Programs with
// Jump Statements" (PLDI 1994).
//
// Conventional dependence-graph slicing never includes goto, break,
// continue or return statements — no statement is data or control
// dependent on a jump — so its slices of programs with jumps are
// wrong. This package implements the paper's repair: after the
// conventional slice is computed, jump statements are added whenever
// their nearest postdominator in the slice differs from their nearest
// lexical successor in the slice, using one extra, purely syntactic
// structure (the lexical successor tree) while leaving the flowgraph
// and the program dependence graph untouched.
//
// The facade wraps the internal packages behind a string-based API:
//
//	s, err := jumpslice.New(source)
//	res, err := s.Slice("positives", 15)          // Figure 7 algorithm
//	res, err := s.SliceWith(jumpslice.Conventional, "positives", 15)
//	fmt.Println(res.Text)                          // runnable subprogram
//
// The algorithms available through SliceWith cover the paper's three
// algorithms (Figures 7, 12 and 13), the conventional baseline, and
// the Section 5 related work (Ball–Horwitz, Lyle, Gallagher,
// Jiang–Zhou–Robson). Graphviz renderings of every derived structure
// are available through DOT.
package jumpslice

import (
	"fmt"

	"jumpslice/internal/baselines"
	"jumpslice/internal/core"
	"jumpslice/internal/dynslice"
	"jumpslice/internal/interp"
	"jumpslice/internal/lang"
	"jumpslice/internal/restructure"
	"jumpslice/internal/viz"
)

// Algorithm selects a slicing algorithm.
type Algorithm string

// The available algorithms.
const (
	// Conventional is jump-unaware PDG reachability (paper Section 2)
	// with the conditional-jump adaptation. Wrong on programs with
	// jumps; provided as the baseline it is.
	Conventional Algorithm = "conventional"
	// Agrawal is the paper's general algorithm (Figure 7). The
	// default.
	Agrawal Algorithm = "agrawal"
	// AgrawalLST is Figure 7 driven by lexical-successor-tree preorder
	// instead of postdominator-tree preorder; same slices.
	AgrawalLST Algorithm = "agrawal-lst"
	// Structured is the simplified algorithm for structured programs
	// (Figure 12). Errors on unstructured programs.
	Structured Algorithm = "structured"
	// Conservative is the approximation algorithm (Figure 13):
	// possibly larger slices, no tree traversals. Errors on
	// unstructured programs.
	Conservative Algorithm = "conservative"
	// BallHorwitz is the augmented-flowgraph baseline of Ball &
	// Horwitz and Choi & Ferrante; computes the same slices as
	// Agrawal.
	BallHorwitz Algorithm = "ball-horwitz"
	// Weiser is Weiser's original iterative-dataflow slicer — the
	// second jump-unaware baseline; computes the same slices as
	// Conventional through entirely different machinery.
	Weiser Algorithm = "weiser"
	// Lyle is Lyle's very conservative rule.
	Lyle Algorithm = "lyle"
	// Gallagher is Gallagher's rule (unsound on the paper's Figure
	// 16).
	Gallagher Algorithm = "gallagher"
	// JiangZhouRobson is a reconstruction of the Jiang–Zhou–Robson
	// rules (unsound on the paper's Figure 8).
	JiangZhouRobson Algorithm = "jzr"
)

// GraphKind selects a DOT rendering.
type GraphKind string

// The available graph renderings.
const (
	GraphCFG GraphKind = "cfg" // control flowgraph
	GraphPDT GraphKind = "pdt" // postdominator tree
	GraphLST GraphKind = "lst" // lexical successor tree
	GraphCDG GraphKind = "cdg" // control dependence graph
	GraphDDG GraphKind = "ddg" // data dependence graph
	GraphPDG GraphKind = "pdg" // program dependence graph
)

// Slicer analyzes one program and computes slices of it.
type Slicer struct {
	analysis *core.Analysis
}

// New parses source text and builds every structure slicing needs:
// the flowgraph, the postdominator tree, the dependence graphs and
// the lexical successor tree.
func New(source string) (*Slicer, error) {
	prog, err := lang.Parse(source)
	if err != nil {
		return nil, err
	}
	a, err := core.Analyze(prog)
	if err != nil {
		return nil, err
	}
	return &Slicer{analysis: a}, nil
}

// Structured reports whether every jump in the program is a
// structured jump (its target is one of its lexical successors) —
// the applicability condition of the Figure 12/13 algorithms.
func (s *Slicer) Structured() bool { return s.analysis.Structured() }

// Source returns the analyzed program, pretty-printed with line
// numbers.
func (s *Slicer) Source() string {
	return lang.Format(s.analysis.Prog, lang.PrintOptions{LineNumbers: true})
}

// Result is a computed slice.
type Result struct {
	// Algorithm that produced the slice.
	Algorithm Algorithm
	// Lines are the source lines of the slice's statements, sorted.
	Lines []int
	// Text is the materialized slice: a runnable subprogram printed
	// with the original line numbers, labels re-associated per the
	// paper's final step.
	Text string
	// Traversals counts postdominator-tree preorder passes (Figure 7
	// family only).
	Traversals int
	// JumpLines are the lines of jump statements the jump-aware phase
	// added beyond the conventional slice, in discovery order.
	JumpLines []int
	// RelabeledTo maps goto labels whose statement was cut to the
	// line their label re-attached to (0 = past the last statement).
	RelabeledTo map[string]int
}

// Slice computes the slice of (variable, line) with the paper's
// general algorithm (Figure 7).
func (s *Slicer) Slice(variable string, line int) (*Result, error) {
	return s.SliceWith(Agrawal, variable, line)
}

// coreSlice dispatches an algorithm by name.
func (s *Slicer) coreSlice(algo Algorithm, c core.Criterion) (*core.Slice, error) {
	switch algo {
	case Conventional:
		return s.analysis.Conventional(c)
	case Agrawal:
		return s.analysis.Agrawal(c)
	case AgrawalLST:
		return s.analysis.AgrawalLST(c)
	case Structured:
		return s.analysis.AgrawalStructured(c)
	case Conservative:
		return s.analysis.AgrawalConservative(c)
	case BallHorwitz:
		return baselines.BallHorwitz(s.analysis, c)
	case Weiser:
		return baselines.Weiser(s.analysis, c)
	case Lyle:
		return baselines.Lyle(s.analysis, c)
	case Gallagher:
		return baselines.Gallagher(s.analysis, c)
	case JiangZhouRobson:
		return baselines.JiangZhouRobson(s.analysis, c)
	}
	return nil, fmt.Errorf("jumpslice: unknown algorithm %q", algo)
}

// SliceWith computes the slice of (variable, line) with the chosen
// algorithm.
func (s *Slicer) SliceWith(algo Algorithm, variable string, line int) (*Result, error) {
	c := core.Criterion{Var: variable, Line: line}
	sl, err := s.coreSlice(algo, c)
	if err != nil {
		return nil, err
	}
	res := &Result{
		Algorithm:   algo,
		Lines:       sl.Lines(),
		Text:        sl.Format(),
		Traversals:  sl.Traversals,
		RelabeledTo: sl.RelabeledLines(),
	}
	for _, id := range sl.JumpsAdded {
		res.JumpLines = append(res.JumpLines, s.analysis.CFG.Nodes[id].Line)
	}
	return res, nil
}

// Explanation is a slice with its provenance: why each statement is
// in it.
type Explanation struct {
	// Result is the slice itself, exactly as Slice would return it.
	Result *Result
	// Reasons maps each source line of the slice to its reason
	// records, rendered as strings: "criterion", "data-dep from 8",
	// "control-dep from 3", "jump-rule(nearest-PD=3, nearest-LS=8)",
	// "cond-jump(pred=5)". Deterministic: per line, records are
	// deduplicated and ordered by node then kind.
	Reasons map[int][]string
	// Listing is the annotated slice listing — every slice line with
	// its source text and its reasons as a trailing comment.
	Listing string
}

// Explain computes the Figure 7 slice of (variable, line) together
// with per-statement provenance: for every statement of the slice, at
// least one machine-checkable reason record whose evidence is itself
// in the slice (or is the criterion). Jump-rule records carry the
// nearest-postdominator/nearest-lexical-successor pair observed when
// the jump was admitted.
func (s *Slicer) Explain(variable string, line int) (*Explanation, error) {
	return s.ExplainWith(Agrawal, variable, line)
}

// ExplainWith computes provenance for the chosen algorithm's slice.
// The paper's own algorithms (conventional, Figure 7/12/13 family,
// dynamic) yield complete provenance; the Section 5 baselines get
// best-effort dependence-edge records only.
func (s *Slicer) ExplainWith(algo Algorithm, variable string, line int) (*Explanation, error) {
	c := core.Criterion{Var: variable, Line: line}
	sl, err := s.coreSlice(algo, c)
	if err != nil {
		return nil, err
	}
	p, err := sl.Explain()
	if err != nil {
		return nil, err
	}
	res := &Result{
		Algorithm:   algo,
		Lines:       sl.Lines(),
		Text:        sl.Format(),
		Traversals:  sl.Traversals,
		RelabeledTo: sl.RelabeledLines(),
	}
	for _, id := range sl.JumpsAdded {
		res.JumpLines = append(res.JumpLines, s.analysis.CFG.Nodes[id].Line)
	}
	return &Explanation{
		Result:  res,
		Reasons: p.LineReasons(),
		Listing: p.Listing(),
	}, nil
}

// Criterion names a slicing criterion for the batch API: the value of
// Var at Line.
type Criterion struct {
	Var  string
	Line int
}

// SliceAll computes the Figure 7 slice of every criterion in one
// batch. All criteria share the analysis's SCC-condensed dependence
// closure cache (built on first use and memoized per component), so
// slicing many criteria of one program is substantially cheaper than
// repeated Slice calls — the slices themselves are identical. Results
// are returned in criterion order.
func (s *Slicer) SliceAll(crits []Criterion) ([]*Result, error) {
	cc := make([]core.Criterion, len(crits))
	for i, c := range crits {
		cc[i] = core.Criterion{Var: c.Var, Line: c.Line}
	}
	slices, err := s.analysis.SliceAll(cc)
	if err != nil {
		return nil, err
	}
	out := make([]*Result, len(slices))
	for i, sl := range slices {
		res := &Result{
			Algorithm:   Agrawal,
			Lines:       sl.Lines(),
			Text:        sl.Format(),
			Traversals:  sl.Traversals,
			RelabeledTo: sl.RelabeledLines(),
		}
		for _, id := range sl.JumpsAdded {
			res.JumpLines = append(res.JumpLines, s.analysis.CFG.Nodes[id].Line)
		}
		out[i] = res
	}
	return out, nil
}

// DynamicSlice computes the dynamic slice of (variable, line) for the
// run on the given input: only statements that actually influenced
// the criterion on that execution, with the paper's jump repair
// applied so the result is a runnable subprogram (see
// internal/dynslice for the construction).
func (s *Slicer) DynamicSlice(variable string, line int, input []int64) (*Result, error) {
	c := core.Criterion{Var: variable, Line: line}
	sl, err := dynslice.Slice(s.analysis, c, dynslice.Options{Input: input})
	if err != nil {
		return nil, err
	}
	res := &Result{
		Algorithm:   "dynamic",
		Lines:       sl.Lines(),
		Text:        sl.Format(),
		Traversals:  sl.Traversals,
		RelabeledTo: sl.RelabeledLines(),
	}
	for _, id := range sl.JumpsAdded {
		res.JumpLines = append(res.JumpLines, s.analysis.CFG.Nodes[id].Line)
	}
	return res, nil
}

// ForwardSlice computes the forward (impact) slice: every statement
// the value of variable at line can affect. Forward slices are
// affected-statement sets, not runnable subprograms.
func (s *Slicer) ForwardSlice(variable string, line int) (*Result, error) {
	sl, err := s.analysis.Forward(core.Criterion{Var: variable, Line: line})
	if err != nil {
		return nil, err
	}
	return &Result{Algorithm: "forward", Lines: sl.Lines()}, nil
}

// Chop computes the statements on dependence paths from the source
// criterion to the target criterion.
func (s *Slicer) Chop(srcVar string, srcLine int, dstVar string, dstLine int) (*Result, error) {
	sl, err := s.analysis.Chop(
		core.Criterion{Var: srcVar, Line: srcLine},
		core.Criterion{Var: dstVar, Line: dstLine})
	if err != nil {
		return nil, err
	}
	return &Result{Algorithm: "chop", Lines: sl.Lines()}, nil
}

// AffectedWrites returns the lines of the write statements a change
// at (variable, line) can influence — the regression-test-selection
// query.
func (s *Slicer) AffectedWrites(variable string, line int) ([]int, error) {
	return s.analysis.AffectedWrites(core.Criterion{Var: variable, Line: line})
}

// Flatten produces the Choi–Ferrante-style executable slice: a flat
// program whose control flow is carried by synthesized gotos rather
// than the original jump statements (the second algorithm the paper's
// Section 5 discusses). The returned source reproduces the criterion
// observations of the original but is not a projection of it.
func (s *Slicer) Flatten(variable string, line int) (source string, synthesizedJumps int, err error) {
	c := core.Criterion{Var: variable, Line: line}
	ex, err := baselines.ChoiFerranteExecutable(s.analysis, c)
	if err != nil {
		return "", 0, err
	}
	return lang.Format(ex.Prog, lang.PrintOptions{}), ex.SynthesizedJumps, nil
}

// Restructure converts the program into an equivalent structured one
// (no gotos; the pc-loop transformation — the flowgraph-structuring
// pathway Ball & Horwitz sketch in the paper's Section 5). The
// Figure 12/13 algorithms apply to the result even when the original
// program was an arbitrary goto tangle.
func (s *Slicer) Restructure() (string, error) {
	flat, err := restructure.Program(s.analysis.Prog)
	if err != nil {
		return "", err
	}
	return lang.Format(flat, lang.PrintOptions{}), nil
}

// DOT renders one of the program's derived graphs in Graphviz format.
// When highlight is non-nil, its slice's nodes are shaded (the
// paper's figures shade slice members).
func (s *Slicer) DOT(kind GraphKind, highlight *Result) (string, error) {
	opts := viz.Options{LineLabels: true}
	if highlight != nil {
		opts.Highlight = map[int]bool{}
		lineSet := map[int]bool{}
		for _, l := range highlight.Lines {
			lineSet[l] = true
		}
		for _, n := range s.analysis.CFG.Nodes {
			if lineSet[n.Line] {
				opts.Highlight[n.ID] = true
			}
		}
	}
	switch kind {
	case GraphCFG:
		return viz.CFG(s.analysis.CFG, opts), nil
	case GraphPDT:
		return viz.Tree(s.analysis.CFG, s.analysis.PDT, opts), nil
	case GraphLST:
		return viz.LST(s.analysis.CFG, s.analysis.LST, opts), nil
	case GraphCDG:
		return viz.CDGGraph(s.analysis, opts), nil
	case GraphDDG:
		return viz.DDGGraph(s.analysis, opts), nil
	case GraphPDG:
		return viz.PDGGraph(s.analysis, opts), nil
	}
	return "", fmt.Errorf("jumpslice: unknown graph kind %q", kind)
}

// Run executes the program on the given input stream (consumed by
// read(); eof() reports its exhaustion) and returns the sequence of
// values written by write().
func (s *Slicer) Run(input []int64) ([]int64, error) {
	res, err := interp.RunCFG(s.analysis.CFG, interp.Options{Input: input})
	if err != nil {
		return nil, err
	}
	return res.Output, nil
}

// RunSlice materializes a slice and executes it on the given input,
// returning the sequence of values the criterion variable takes at
// the criterion line — and, for comparison, the same sequence from
// the original program. Equal sequences on all inputs is Weiser's
// correctness condition for slices of terminating programs.
func (s *Slicer) RunSlice(algo Algorithm, variable string, line int, input []int64) (sliceObs, origObs []int64, err error) {
	c := core.Criterion{Var: variable, Line: line}
	sl, err := s.coreSlice(algo, c)
	if err != nil {
		return nil, nil, err
	}
	sliceObs, err = interp.Observe(sl.Materialize(), input, variable, line)
	if err != nil {
		return nil, nil, err
	}
	origObs, err = interp.Observe(s.analysis.Prog, input, variable, line)
	return sliceObs, origObs, err
}
