module jumpslice

go 1.22
